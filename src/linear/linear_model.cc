#include "linear/linear_model.h"

#include <cmath>
#include <sstream>

#include "linear/dense_solver.h"
#include "util/serialization.h"
#include "util/string_util.h"

namespace mysawh::linear {

namespace {

/// Shared text payload of the two generalized-linear families: header,
/// hex-encoded intercept, feature names, weight and imputation-mean rows.
std::string SerializeGeneralizedLinear(
    const char* header, double intercept,
    const std::vector<std::string>& feature_names,
    const std::vector<double>& weights, const std::vector<double>& means) {
  std::ostringstream os;
  os << header << "\n";
  os << "intercept " << EncodeDouble(intercept) << "\n";
  os << "num_features " << feature_names.size() << "\n";
  for (const auto& name : feature_names) os << "feature " << name << "\n";
  os << "weights " << EncodeDoubleVector(weights) << "\n";
  os << "means " << EncodeDoubleVector(means) << "\n";
  return os.str();
}

struct GeneralizedLinearFields {
  double intercept = 0.0;
  std::vector<std::string> feature_names;
  std::vector<double> weights;
  std::vector<double> means;
};

Result<GeneralizedLinearFields> ParseGeneralizedLinear(
    const char* expected_header, const std::string& text) {
  std::istringstream is(text);
  std::string line;
  auto next_line = [&]() -> Result<std::string> {
    if (!std::getline(is, line)) {
      return Status::InvalidArgument("model text truncated");
    }
    return line;
  };
  MYSAWH_ASSIGN_OR_RETURN(std::string header, next_line());
  if (header != expected_header) {
    return Status::InvalidArgument("bad model header: " + header);
  }
  GeneralizedLinearFields fields;
  MYSAWH_ASSIGN_OR_RETURN(std::string intercept_line, next_line());
  {
    const auto parts = Split(intercept_line, ' ');
    if (parts.size() != 2 || parts[0] != "intercept") {
      return Status::InvalidArgument("bad intercept line");
    }
    MYSAWH_ASSIGN_OR_RETURN(fields.intercept, DecodeDouble(parts[1]));
  }
  MYSAWH_ASSIGN_OR_RETURN(std::string nf_line, next_line());
  int64_t num_features = 0;
  {
    const auto parts = Split(nf_line, ' ');
    if (parts.size() != 2 || parts[0] != "num_features") {
      return Status::InvalidArgument("bad num_features line");
    }
    MYSAWH_ASSIGN_OR_RETURN(num_features, ParseInt64(parts[1]));
    if (num_features < 0) {
      return Status::InvalidArgument("negative num_features");
    }
  }
  for (int64_t i = 0; i < num_features; ++i) {
    MYSAWH_ASSIGN_OR_RETURN(std::string fline, next_line());
    if (!StartsWith(fline, "feature ")) {
      return Status::InvalidArgument("bad feature line: " + fline);
    }
    fields.feature_names.push_back(fline.substr(8));
  }
  MYSAWH_ASSIGN_OR_RETURN(std::string w_line, next_line());
  if (!StartsWith(w_line, "weights")) {
    return Status::InvalidArgument("bad weights line: " + w_line);
  }
  MYSAWH_ASSIGN_OR_RETURN(
      fields.weights,
      DecodeDoubleVector(Trim(w_line.substr(7)), num_features));
  MYSAWH_ASSIGN_OR_RETURN(std::string m_line, next_line());
  if (!StartsWith(m_line, "means")) {
    return Status::InvalidArgument("bad means line: " + m_line);
  }
  MYSAWH_ASSIGN_OR_RETURN(
      fields.means, DecodeDoubleVector(Trim(m_line.substr(5)), num_features));
  return fields;
}

/// Column means over present values (0 when a column is entirely missing).
std::vector<double> ComputeFeatureMeans(const Dataset& data) {
  const int64_t nf = data.num_features();
  std::vector<double> means(static_cast<size_t>(nf), 0.0);
  for (int64_t f = 0; f < nf; ++f) {
    double sum = 0.0;
    int64_t count = 0;
    for (int64_t r = 0; r < data.num_rows(); ++r) {
      const double v = data.At(r, f);
      if (!std::isnan(v)) {
        sum += v;
        ++count;
      }
    }
    means[static_cast<size_t>(f)] =
        count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  return means;
}

double ImputedAt(const Dataset& data, const std::vector<double>& means,
                 int64_t row, int64_t feature) {
  const double v = data.At(row, feature);
  return std::isnan(v) ? means[static_cast<size_t>(feature)] : v;
}

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

double DotWithImputation(const double* row, const std::vector<double>& weights,
                         const std::vector<double>& means, double intercept) {
  double acc = intercept;
  for (size_t f = 0; f < weights.size(); ++f) {
    const double v = std::isnan(row[f]) ? means[f] : row[f];
    acc += weights[f] * v;
  }
  return acc;
}

}  // namespace

Result<LinearModel> LinearModel::Train(const Dataset& train, double lambda) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("training set is empty");
  }
  if (lambda < 0.0) return Status::InvalidArgument("lambda must be >= 0");
  const int64_t nf = train.num_features();
  const int64_t n = train.num_rows();
  const int64_t dim = nf + 1;  // + intercept

  LinearModel model;
  model.feature_names_ = train.feature_names();
  model.feature_means_ = ComputeFeatureMeans(train);

  // Normal equations with the intercept as an extra all-ones column.
  SquareMatrix xtx(dim);
  std::vector<double> xty(static_cast<size_t>(dim), 0.0);
  std::vector<double> x(static_cast<size_t>(dim));
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t f = 0; f < nf; ++f) {
      x[static_cast<size_t>(f)] = ImputedAt(train, model.feature_means_, r, f);
    }
    x[static_cast<size_t>(nf)] = 1.0;
    const double y = train.label(r);
    for (int64_t i = 0; i < dim; ++i) {
      xty[static_cast<size_t>(i)] += x[static_cast<size_t>(i)] * y;
      for (int64_t j = 0; j <= i; ++j) {
        xtx.at(i, j) += x[static_cast<size_t>(i)] * x[static_cast<size_t>(j)];
      }
    }
  }
  for (int64_t i = 0; i < dim; ++i) {
    for (int64_t j = i + 1; j < dim; ++j) xtx.at(i, j) = xtx.at(j, i);
  }
  // Penalize weights, not the intercept; tiny jitter keeps the intercept
  // block positive definite for degenerate inputs.
  for (int64_t f = 0; f < nf; ++f) xtx.at(f, f) += lambda;
  xtx.at(nf, nf) += 1e-12;

  MYSAWH_ASSIGN_OR_RETURN(std::vector<double> solution,
                          CholeskySolve(xtx, xty));
  model.weights_.assign(solution.begin(), solution.end() - 1);
  model.intercept_ = solution.back();
  return model;
}

double LinearModel::PredictRow(const double* row) const {
  return DotWithImputation(row, weights_, feature_means_, intercept_);
}

Result<std::vector<double>> LinearModel::Predict(const Dataset& data) const {
  if (data.num_features() != num_features()) {
    return Status::InvalidArgument("Predict: dataset width mismatch");
  }
  std::vector<double> out(static_cast<size_t>(data.num_rows()));
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    out[static_cast<size_t>(r)] = PredictRow(data.row(r));
  }
  return out;
}

std::string LinearModel::Serialize() const {
  return SerializeGeneralizedLinear("mysawh-linear v1", intercept_,
                                    feature_names_, weights_, feature_means_);
}

Result<LinearModel> LinearModel::Deserialize(const std::string& text) {
  MYSAWH_ASSIGN_OR_RETURN(GeneralizedLinearFields fields,
                          ParseGeneralizedLinear("mysawh-linear v1", text));
  LinearModel model;
  model.intercept_ = fields.intercept;
  model.feature_names_ = std::move(fields.feature_names);
  model.weights_ = std::move(fields.weights);
  model.feature_means_ = std::move(fields.means);
  return model;
}

Result<LogisticModel> LogisticModel::Train(const Dataset& train, double lambda,
                                           int max_iters, double tol) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("training set is empty");
  }
  if (lambda < 0.0) return Status::InvalidArgument("lambda must be >= 0");
  if (max_iters < 1) return Status::InvalidArgument("max_iters must be >= 1");
  for (double y : train.labels()) {
    if (y != 0.0 && y != 1.0) {
      return Status::InvalidArgument("logistic labels must be 0 or 1");
    }
  }
  const int64_t nf = train.num_features();
  const int64_t n = train.num_rows();
  const int64_t dim = nf + 1;

  LogisticModel model;
  model.feature_names_ = train.feature_names();
  model.feature_means_ = ComputeFeatureMeans(train);
  std::vector<double> beta(static_cast<size_t>(dim), 0.0);

  std::vector<double> x(static_cast<size_t>(dim));
  for (int iter = 0; iter < max_iters; ++iter) {
    SquareMatrix hess(dim);
    std::vector<double> grad(static_cast<size_t>(dim), 0.0);
    for (int64_t r = 0; r < n; ++r) {
      for (int64_t f = 0; f < nf; ++f) {
        x[static_cast<size_t>(f)] =
            ImputedAt(train, model.feature_means_, r, f);
      }
      x[static_cast<size_t>(nf)] = 1.0;
      double margin = 0.0;
      for (int64_t i = 0; i < dim; ++i) {
        margin += beta[static_cast<size_t>(i)] * x[static_cast<size_t>(i)];
      }
      const double p = Sigmoid(margin);
      const double w = std::max(p * (1.0 - p), 1e-10);
      const double residual = train.label(r) - p;
      for (int64_t i = 0; i < dim; ++i) {
        grad[static_cast<size_t>(i)] += x[static_cast<size_t>(i)] * residual;
        for (int64_t j = 0; j <= i; ++j) {
          hess.at(i, j) +=
              w * x[static_cast<size_t>(i)] * x[static_cast<size_t>(j)];
        }
      }
    }
    for (int64_t i = 0; i < dim; ++i) {
      for (int64_t j = i + 1; j < dim; ++j) hess.at(i, j) = hess.at(j, i);
    }
    // Ridge on weights: gradient -= lambda * beta, hessian += lambda I.
    for (int64_t f = 0; f < nf; ++f) {
      grad[static_cast<size_t>(f)] -= lambda * beta[static_cast<size_t>(f)];
      hess.at(f, f) += lambda;
    }
    hess.at(nf, nf) += 1e-10;

    MYSAWH_ASSIGN_OR_RETURN(std::vector<double> step,
                            CholeskySolve(hess, grad));
    double max_step = 0.0;
    for (int64_t i = 0; i < dim; ++i) {
      beta[static_cast<size_t>(i)] += step[static_cast<size_t>(i)];
      max_step = std::max(max_step, std::abs(step[static_cast<size_t>(i)]));
    }
    if (max_step < tol) break;
  }
  model.weights_.assign(beta.begin(), beta.end() - 1);
  model.intercept_ = beta.back();
  return model;
}

double LogisticModel::PredictRow(const double* row) const {
  return Sigmoid(DotWithImputation(row, weights_, feature_means_, intercept_));
}

Result<std::vector<double>> LogisticModel::Predict(const Dataset& data) const {
  if (data.num_features() != num_features()) {
    return Status::InvalidArgument("Predict: dataset width mismatch");
  }
  std::vector<double> out(static_cast<size_t>(data.num_rows()));
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    out[static_cast<size_t>(r)] = PredictRow(data.row(r));
  }
  return out;
}

std::string LogisticModel::Serialize() const {
  return SerializeGeneralizedLinear("mysawh-logistic v1", intercept_,
                                    feature_names_, weights_, feature_means_);
}

Result<LogisticModel> LogisticModel::Deserialize(const std::string& text) {
  MYSAWH_ASSIGN_OR_RETURN(GeneralizedLinearFields fields,
                          ParseGeneralizedLinear("mysawh-logistic v1", text));
  LogisticModel model;
  model.intercept_ = fields.intercept;
  model.feature_names_ = std::move(fields.feature_names);
  model.weights_ = std::move(fields.weights);
  model.feature_means_ = std::move(fields.means);
  return model;
}

}  // namespace mysawh::linear
