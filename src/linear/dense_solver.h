#ifndef MYSAWH_LINEAR_DENSE_SOLVER_H_
#define MYSAWH_LINEAR_DENSE_SOLVER_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace mysawh::linear {

/// A small dense square matrix in row-major storage, sized for normal
/// equations over tens of features (the library's linear baselines).
class SquareMatrix {
 public:
  /// Zero matrix of dimension n x n.
  explicit SquareMatrix(int64_t n);

  int64_t dim() const { return n_; }
  double at(int64_t r, int64_t c) const {
    return data_[static_cast<size_t>(r * n_ + c)];
  }
  double& at(int64_t r, int64_t c) {
    return data_[static_cast<size_t>(r * n_ + c)];
  }

 private:
  int64_t n_;
  std::vector<double> data_;
};

/// Solves A x = b for symmetric positive-definite A via Cholesky
/// factorization. Fails when A is not (numerically) positive definite or
/// sizes mismatch.
Result<std::vector<double>> CholeskySolve(const SquareMatrix& a,
                                          const std::vector<double>& b);

}  // namespace mysawh::linear

#endif  // MYSAWH_LINEAR_DENSE_SOLVER_H_
