#ifndef MYSAWH_EXPLAIN_TREE_SHAP_H_
#define MYSAWH_EXPLAIN_TREE_SHAP_H_

#include <vector>

#include "data/dataset.h"
#include "gbt/gbt_model.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace mysawh::explain {

/// Exact TreeSHAP (Lundberg et al., "Consistent Individualized Feature
/// Attribution for Tree Ensembles") over a trained GbtModel.
///
/// For each input row it computes one Shapley value per feature on the raw
/// margin scale, satisfying the local-accuracy identity
///
///     raw_prediction(x) = expected_value() + sum_j shap_j(x)
///
/// where expected_value() is the cover-weighted mean raw output of the
/// ensemble. Cover is the training hessian mass per node, matching
/// XGBoost's TreeSHAP semantics. Runs in O(trees * leaves * depth^2).
class TreeShap {
 public:
  /// `model` must outlive this object.
  explicit TreeShap(const gbt::GbtModel* model);

  /// SHAP values for one row (num_features() doubles; NaN = missing).
  std::vector<double> Shap(const double* row) const;

  /// SHAP values for every row of `data` (one inner vector per row). Runs
  /// the flat-forest recursion when the model compiled one (bit-identical
  /// to the reference recursion; see gbt/flat_forest.h), the reference
  /// per-tree recursion otherwise. Batches with more rows than the forest
  /// has ancestor-direction patterns amortize further: every
  /// (leaf, pattern) addend is precomputed once per batch and each row
  /// replays a table-lookup walk — same values, same accumulation order,
  /// so still bit-identical. Rows are explained in parallel on `pool`
  /// (nullptr = the shared `DefaultPool()`); the output equals calling
  /// Shap() per row for any thread count and either batch strategy.
  Result<std::vector<std::vector<double>>> ShapBatch(
      const Dataset& data, ThreadPool* pool = nullptr) const;

  /// The uncompiled batch path (per-tree pointer recursion); the benchmark
  /// twin and equivalence tests measure ShapBatch against this.
  Result<std::vector<std::vector<double>>> ShapBatchReference(
      const Dataset& data, ThreadPool* pool = nullptr) const;

  /// SHAP interaction values for one row: an M x M matrix (row-major,
  /// M = num_features) where entry (i, j), i != j, is feature i and j's
  /// pairwise interaction effect and (i, i) is feature i's main effect.
  /// Satisfies (up to float error):
  ///   * symmetry:      phi[i][j] == phi[j][i]
  ///   * row sums:      sum_j phi[i][j] == Shap(row)[i]
  ///   * local accuracy: sum_ij phi[i][j] + expected_value() == raw(x)
  /// Cost: num_features + 1 passes of the TreeSHAP recursion
  /// (O(M * trees * leaves * depth^2)).
  std::vector<double> ShapInteractions(const double* row) const;

  /// Raw-scale expectation of the model over its training distribution
  /// (base_score plus each tree's cover-weighted leaf mean).
  double expected_value() const { return expected_value_; }

  const gbt::GbtModel& model() const { return *model_; }

 private:
  const gbt::GbtModel* model_;
  double expected_value_ = 0.0;
};

}  // namespace mysawh::explain

#endif  // MYSAWH_EXPLAIN_TREE_SHAP_H_
