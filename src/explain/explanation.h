#ifndef MYSAWH_EXPLAIN_EXPLANATION_H_
#define MYSAWH_EXPLAIN_EXPLANATION_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "explain/tree_shap.h"
#include "util/status.h"

namespace mysawh::explain {

/// One feature's contribution to a single prediction.
struct FeatureContribution {
  std::string feature;
  double value = 0.0;  ///< The feature's value in the explained row.
  double shap = 0.0;   ///< Its Shapley contribution (raw margin scale).
};

/// A per-instance explanation: the prediction plus features ranked by
/// |SHAP| descending — the paper's Fig 6 artifact, where the clinician sees
/// which behaviours push a specific patient's predicted outcome up or down.
struct LocalExplanation {
  double prediction = 0.0;      ///< Transformed model output.
  double raw_prediction = 0.0;  ///< Margin-scale output.
  double expected_value = 0.0;  ///< Margin-scale model expectation.
  std::vector<FeatureContribution> contributions;  ///< Sorted by |shap| desc.

  /// The top `k` contributions.
  std::vector<FeatureContribution> Top(int k) const;

  /// Multi-line rendering with signed bars ("+" pushes the prediction up,
  /// "-" pulls it down).
  std::string ToString(int top_k = 5) const;
};

/// Explains one row of `data` with SHAP values from `shap`.
Result<LocalExplanation> ExplainRow(const TreeShap& shap, const Dataset& data,
                                    int64_t row);

/// Global importance: mean |SHAP| per feature over a dataset, sorted
/// descending. The standard SHAP summary ranking.
struct GlobalImportance {
  std::vector<std::string> features;
  std::vector<double> mean_abs_shap;  ///< Parallel to `features`.
};
Result<GlobalImportance> ComputeGlobalImportance(const TreeShap& shap,
                                                 const Dataset& data);

/// The paper's Fig 7 artifact: the dependence of one feature's SHAP value
/// on the feature's value across a population, and a data-derived decision
/// threshold recovered from the sign change — the DD analogue of the KD
/// experts' hand-picked cutoffs.
struct DependenceCurve {
  std::string feature;
  std::vector<double> values;       ///< Feature values (one per sample).
  std::vector<double> shap_values;  ///< Matching SHAP values.

  /// Distinct feature values, ascending.
  std::vector<double> distinct_values;
  /// Mean SHAP value at each distinct feature value.
  std::vector<double> mean_shap;
  /// Number of samples at each distinct feature value.
  std::vector<int64_t> counts;

  /// Recovered threshold: the boundary between adjacent distinct values
  /// that best splits the SHAP values into a low and a high group (maximum
  /// between-group variance, the classic 1-D split criterion), provided the
  /// two group means have opposite signs. NaN / has_threshold == false when
  /// no sign-separating boundary exists.
  double recovered_threshold = 0.0;
  bool has_threshold = false;
};

/// Builds the dependence curve of `feature_name` over `data` (rows with a
/// missing value of the feature are skipped).
Result<DependenceCurve> ComputeDependenceCurve(const TreeShap& shap,
                                               const Dataset& data,
                                               const std::string& feature_name);

/// A textual stand-in for the SHAP "beeswarm" summary plot: per feature,
/// the global importance (mean |SHAP|) plus the direction of the effect —
/// the Pearson correlation between the feature's values and its SHAP
/// values (positive: larger values push predictions up).
struct ShapSummary {
  std::vector<std::string> features;  ///< Sorted by importance, descending.
  std::vector<double> mean_abs_shap;
  std::vector<double> direction;  ///< Correlation in [-1, 1]; 0 when flat
                                  ///< or the feature is always missing.
};

/// Computes the summary over `data`.
Result<ShapSummary> ComputeShapSummary(const TreeShap& shap,
                                       const Dataset& data);

/// Renders the top `top_k` rows as an aligned text table with signed bars.
std::string RenderShapSummary(const ShapSummary& summary, int top_k = 15);

}  // namespace mysawh::explain

#endif  // MYSAWH_EXPLAIN_EXPLANATION_H_
