#include "explain/permutation_importance.h"

#include <algorithm>

#include "gbt/objective.h"
#include "util/rng.h"

namespace mysawh::explain {

Result<PermutationImportance> ComputePermutationImportance(
    const gbt::GbtModel& model, const Dataset& data, int repeats,
    uint64_t seed) {
  if (repeats < 1) {
    return Status::InvalidArgument("repeats must be >= 1");
  }
  if (data.num_rows() < 2) {
    return Status::InvalidArgument(
        "permutation importance needs at least 2 rows");
  }
  if (data.num_features() != model.num_features()) {
    return Status::InvalidArgument("dataset width mismatch");
  }
  const auto objective = gbt::MakeObjective(model.objective_type());
  MYSAWH_ASSIGN_OR_RETURN(std::vector<double> baseline_preds,
                          model.Predict(data));
  const double baseline =
      objective->EvalDefaultMetric(data.labels(), baseline_preds);

  Rng rng(seed);
  const int64_t n = data.num_rows();
  std::vector<double> scores(static_cast<size_t>(data.num_features()), 0.0);
  // Work on a mutable copy so one column can be shuffled in place and
  // restored afterwards.
  Dataset scratch = data;
  for (int64_t f = 0; f < data.num_features(); ++f) {
    const std::vector<double> original = data.FeatureColumn(f);
    double total = 0.0;
    for (int r = 0; r < repeats; ++r) {
      std::vector<double> shuffled = original;
      rng.Shuffle(&shuffled);
      for (int64_t i = 0; i < n; ++i) {
        scratch.Set(i, f, shuffled[static_cast<size_t>(i)]);
      }
      MYSAWH_ASSIGN_OR_RETURN(std::vector<double> preds,
                              model.Predict(scratch));
      total += objective->EvalDefaultMetric(data.labels(), preds) - baseline;
    }
    scores[static_cast<size_t>(f)] = total / static_cast<double>(repeats);
    for (int64_t i = 0; i < n; ++i) {
      scratch.Set(i, f, original[static_cast<size_t>(i)]);
    }
  }

  std::vector<size_t> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return model.feature_names()[a] < model.feature_names()[b];
  });
  PermutationImportance out;
  out.baseline_metric = baseline;
  for (size_t i : order) {
    out.features.push_back(model.feature_names()[i]);
    out.importance.push_back(scores[i]);
  }
  return out;
}

}  // namespace mysawh::explain
