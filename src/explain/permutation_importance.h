#ifndef MYSAWH_EXPLAIN_PERMUTATION_IMPORTANCE_H_
#define MYSAWH_EXPLAIN_PERMUTATION_IMPORTANCE_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "gbt/gbt_model.h"
#include "util/status.h"

namespace mysawh::explain {

/// Model-agnostic permutation feature importance: how much the model's
/// default metric (RMSE for regression, log-loss for classification)
/// degrades when one feature column is shuffled, averaged over `repeats`
/// shuffles. Complements SHAP: permutation importance measures reliance on
/// a feature under the data distribution, SHAP attributes individual
/// predictions.
struct PermutationImportance {
  std::vector<std::string> features;   ///< Sorted by importance, descending.
  std::vector<double> importance;      ///< Mean metric increase per feature.
  double baseline_metric = 0.0;        ///< Metric on the unshuffled data.
};

/// Computes permutation importance of `model` on `data`. `repeats` >= 1
/// shuffles per feature; `seed` drives the shuffles.
Result<PermutationImportance> ComputePermutationImportance(
    const gbt::GbtModel& model, const Dataset& data, int repeats = 3,
    uint64_t seed = 17);

}  // namespace mysawh::explain

#endif  // MYSAWH_EXPLAIN_PERMUTATION_IMPORTANCE_H_
