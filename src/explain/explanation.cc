#include "explain/explanation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>

#include "util/stats.h"
#include "util/string_util.h"

namespace mysawh::explain {

std::vector<FeatureContribution> LocalExplanation::Top(int k) const {
  const auto n = std::min<size_t>(static_cast<size_t>(std::max(k, 0)),
                                  contributions.size());
  return {contributions.begin(), contributions.begin() + static_cast<long>(n)};
}

std::string LocalExplanation::ToString(int top_k) const {
  std::ostringstream os;
  os << "prediction=" << FormatDouble(prediction, 4)
     << " (raw=" << FormatDouble(raw_prediction, 4)
     << ", expected=" << FormatDouble(expected_value, 4) << ")\n";
  double max_abs = 0.0;
  for (const auto& c : Top(top_k)) max_abs = std::max(max_abs, std::abs(c.shap));
  for (const auto& c : Top(top_k)) {
    const int width =
        max_abs > 0 ? static_cast<int>(std::abs(c.shap) / max_abs * 24 + 0.5)
                    : 0;
    os << "  " << (c.shap >= 0 ? "+" : "-") << " "
       << std::string(static_cast<size_t>(width), c.shap >= 0 ? '#' : '=')
       << " " << c.feature << "=" << FormatDouble(c.value, 4)
       << " (shap=" << FormatDouble(c.shap, 4) << ")\n";
  }
  return os.str();
}

Result<LocalExplanation> ExplainRow(const TreeShap& shap, const Dataset& data,
                                    int64_t row) {
  if (row < 0 || row >= data.num_rows()) {
    return Status::OutOfRange("ExplainRow: row out of range");
  }
  if (data.num_features() != shap.model().num_features()) {
    return Status::InvalidArgument("ExplainRow: dataset width mismatch");
  }
  LocalExplanation out;
  const double* x = data.row(row);
  const std::vector<double> phi = shap.Shap(x);
  out.raw_prediction = shap.model().PredictRowRaw(x);
  out.prediction = shap.model().PredictRow(x);
  out.expected_value = shap.expected_value();
  const auto& names = shap.model().feature_names();
  out.contributions.reserve(phi.size());
  for (size_t f = 0; f < phi.size(); ++f) {
    out.contributions.push_back({names[f], x[f], phi[f]});
  }
  std::sort(out.contributions.begin(), out.contributions.end(),
            [](const FeatureContribution& a, const FeatureContribution& b) {
              if (std::abs(a.shap) != std::abs(b.shap)) {
                return std::abs(a.shap) > std::abs(b.shap);
              }
              return a.feature < b.feature;
            });
  return out;
}

Result<GlobalImportance> ComputeGlobalImportance(const TreeShap& shap,
                                                 const Dataset& data) {
  MYSAWH_ASSIGN_OR_RETURN(auto matrix, shap.ShapBatch(data));
  const auto& names = shap.model().feature_names();
  std::vector<double> mean_abs(names.size(), 0.0);
  for (const auto& row : matrix) {
    for (size_t f = 0; f < row.size(); ++f) mean_abs[f] += std::abs(row[f]);
  }
  if (!matrix.empty()) {
    for (double& v : mean_abs) v /= static_cast<double>(matrix.size());
  }
  std::vector<size_t> order(names.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (mean_abs[a] != mean_abs[b]) return mean_abs[a] > mean_abs[b];
    return names[a] < names[b];
  });
  GlobalImportance out;
  for (size_t i : order) {
    out.features.push_back(names[i]);
    out.mean_abs_shap.push_back(mean_abs[i]);
  }
  return out;
}

Result<DependenceCurve> ComputeDependenceCurve(
    const TreeShap& shap, const Dataset& data,
    const std::string& feature_name) {
  MYSAWH_ASSIGN_OR_RETURN(int feature, data.FeatureIndex(feature_name));
  MYSAWH_ASSIGN_OR_RETURN(auto matrix, shap.ShapBatch(data));
  DependenceCurve curve;
  curve.feature = feature_name;
  std::map<double, std::pair<double, int64_t>> by_value;  // sum, count
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    const double v = data.At(r, feature);
    if (std::isnan(v)) continue;
    const double sv = matrix[static_cast<size_t>(r)][static_cast<size_t>(feature)];
    curve.values.push_back(v);
    curve.shap_values.push_back(sv);
    auto& acc = by_value[v];
    acc.first += sv;
    ++acc.second;
  }
  for (const auto& [v, acc] : by_value) {
    curve.distinct_values.push_back(v);
    curve.mean_shap.push_back(acc.first / static_cast<double>(acc.second));
    curve.counts.push_back(acc.second);
  }
  // Recovered threshold: scan every boundary between adjacent distinct
  // values and score it by the between-group variance of the SHAP values
  // (count-weighted), keeping only boundaries whose group means have
  // opposite signs. This is robust to the noisy micro sign-changes a raw
  // zero-crossing rule would latch onto.
  curve.recovered_threshold = std::numeric_limits<double>::quiet_NaN();
  double total_sum = 0.0;
  int64_t total_count = 0;
  for (size_t i = 0; i < curve.mean_shap.size(); ++i) {
    total_sum += curve.mean_shap[i] * static_cast<double>(curve.counts[i]);
    total_count += curve.counts[i];
  }
  double best_score = 0.0;
  double left_sum = 0.0;
  int64_t left_count = 0;
  for (size_t i = 0; i + 1 < curve.mean_shap.size(); ++i) {
    left_sum += curve.mean_shap[i] * static_cast<double>(curve.counts[i]);
    left_count += curve.counts[i];
    const int64_t right_count = total_count - left_count;
    if (right_count == 0) break;
    const double mean_left = left_sum / static_cast<double>(left_count);
    const double mean_right =
        (total_sum - left_sum) / static_cast<double>(right_count);
    if ((mean_left < 0.0) == (mean_right < 0.0)) continue;
    const double diff = mean_left - mean_right;
    const double score = static_cast<double>(left_count) *
                         static_cast<double>(right_count) /
                         static_cast<double>(total_count) * diff * diff;
    if (score > best_score) {
      best_score = score;
      curve.recovered_threshold =
          0.5 * (curve.distinct_values[i] + curve.distinct_values[i + 1]);
      curve.has_threshold = true;
    }
  }
  return curve;
}


Result<ShapSummary> ComputeShapSummary(const TreeShap& shap,
                                       const Dataset& data) {
  MYSAWH_ASSIGN_OR_RETURN(auto matrix, shap.ShapBatch(data));
  if (matrix.empty()) {
    return Status::InvalidArgument("ComputeShapSummary on empty dataset");
  }
  const auto& names = shap.model().feature_names();
  const size_t m = names.size();
  std::vector<double> mean_abs(m, 0.0);
  std::vector<double> direction(m, 0.0);
  for (size_t f = 0; f < m; ++f) {
    std::vector<double> values, shap_values;
    double abs_sum = 0.0;
    for (size_t r = 0; r < matrix.size(); ++r) {
      const double sv = matrix[r][f];
      abs_sum += std::abs(sv);
      const double v = data.At(static_cast<int64_t>(r),
                               static_cast<int64_t>(f));
      if (!std::isnan(v)) {
        values.push_back(v);
        shap_values.push_back(sv);
      }
    }
    mean_abs[f] = abs_sum / static_cast<double>(matrix.size());
    if (values.size() >= 2) {
      auto corr = PearsonCorrelation(values, shap_values);
      direction[f] = corr.ok() ? *corr : 0.0;
    }
  }
  std::vector<size_t> order(m);
  for (size_t i = 0; i < m; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (mean_abs[a] != mean_abs[b]) return mean_abs[a] > mean_abs[b];
    return names[a] < names[b];
  });
  ShapSummary out;
  for (size_t i : order) {
    out.features.push_back(names[i]);
    out.mean_abs_shap.push_back(mean_abs[i]);
    out.direction.push_back(direction[i]);
  }
  return out;
}

std::string RenderShapSummary(const ShapSummary& summary, int top_k) {
  std::ostringstream os;
  const size_t n = std::min<size_t>(summary.features.size(),
                                    static_cast<size_t>(std::max(top_k, 0)));
  double max_abs = 1e-300;
  size_t name_width = 0;
  for (size_t i = 0; i < n; ++i) {
    max_abs = std::max(max_abs, summary.mean_abs_shap[i]);
    name_width = std::max(name_width, summary.features[i].size());
  }
  for (size_t i = 0; i < n; ++i) {
    const int width = static_cast<int>(
        summary.mean_abs_shap[i] / max_abs * 24 + 0.5);
    const double dir = summary.direction[i];
    const char* arrow = dir > 0.2 ? "^" : (dir < -0.2 ? "v" : "~");
    os << summary.features[i]
       << std::string(name_width - summary.features[i].size(), ' ') << "  "
       << arrow << " " << std::string(static_cast<size_t>(width), '#') << " "
       << FormatDouble(summary.mean_abs_shap[i], 5) << " (dir "
       << FormatDouble(dir, 2) << ")\n";
  }
  return os.str();
}

}  // namespace mysawh::explain
