#include "explain/tree_shap.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace mysawh::explain {

namespace {

using gbt::RegressionTree;
using gbt::TreeNode;

/// One step of the feature path maintained by the TreeSHAP recursion.
struct PathElement {
  int feature_index = -1;
  double zero_fraction = 0.0;  ///< Fraction of "feature absent" paths kept.
  double one_fraction = 0.0;   ///< 1 when x follows this split, else 0.
  double pweight = 0.0;        ///< Permutation weight of this prefix length.
};

/// Grows the path by one split, updating permutation weights.
void ExtendPath(PathElement* path, int unique_depth, double zero_fraction,
                double one_fraction, int feature_index) {
  path[unique_depth].feature_index = feature_index;
  path[unique_depth].zero_fraction = zero_fraction;
  path[unique_depth].one_fraction = one_fraction;
  path[unique_depth].pweight = unique_depth == 0 ? 1.0 : 0.0;
  const double d = static_cast<double>(unique_depth) + 1.0;
  for (int i = unique_depth - 1; i >= 0; --i) {
    path[i + 1].pweight +=
        one_fraction * path[i].pweight * static_cast<double>(i + 1) / d;
    path[i].pweight = zero_fraction * path[i].pweight *
                      static_cast<double>(unique_depth - i) / d;
  }
}

/// Removes the element at `path_index`, restoring the weights ExtendPath
/// would have produced without it.
void UnwindPath(PathElement* path, int unique_depth, int path_index) {
  const double one_fraction = path[path_index].one_fraction;
  const double zero_fraction = path[path_index].zero_fraction;
  double next_one_portion = path[unique_depth].pweight;
  const double d = static_cast<double>(unique_depth) + 1.0;
  for (int i = unique_depth - 1; i >= 0; --i) {
    if (one_fraction != 0.0) {
      const double tmp = path[i].pweight;
      path[i].pweight =
          next_one_portion * d / (static_cast<double>(i + 1) * one_fraction);
      next_one_portion = tmp - path[i].pweight * zero_fraction *
                                   static_cast<double>(unique_depth - i) / d;
    } else {
      path[i].pweight = path[i].pweight * d /
                        (zero_fraction * static_cast<double>(unique_depth - i));
    }
  }
  for (int i = path_index; i < unique_depth; ++i) {
    path[i].feature_index = path[i + 1].feature_index;
    path[i].zero_fraction = path[i + 1].zero_fraction;
    path[i].one_fraction = path[i + 1].one_fraction;
  }
}

/// Total permutation weight the element at `path_index` would carry if it
/// were unwound — the w factor of the SHAP sum at a leaf.
double UnwoundPathSum(const PathElement* path, int unique_depth,
                      int path_index) {
  const double one_fraction = path[path_index].one_fraction;
  const double zero_fraction = path[path_index].zero_fraction;
  double next_one_portion = path[unique_depth].pweight;
  double total = 0.0;
  const double d = static_cast<double>(unique_depth) + 1.0;
  for (int i = unique_depth - 1; i >= 0; --i) {
    if (one_fraction != 0.0) {
      const double tmp =
          next_one_portion * d / (static_cast<double>(i + 1) * one_fraction);
      total += tmp;
      next_one_portion =
          path[i].pweight -
          tmp * zero_fraction * static_cast<double>(unique_depth - i) / d;
    } else {
      total += path[i].pweight /
               (zero_fraction * static_cast<double>(unique_depth - i) / d);
    }
  }
  return total;
}

double SafeCover(double cover) { return std::max(cover, 1e-30); }

/// Core recursion: walks every root-to-leaf path once, maintaining the set
/// of unique features on the path with their zero/one fractions.
///
/// `condition` extends the plain algorithm for interaction values
/// (Lundberg et al., Algorithm 3): 0 computes ordinary SHAP values;
/// +1 conditions on `condition_feature` being present (known), -1 on it
/// being absent — the conditioned feature is kept off the path and its
/// branch weights flow through `condition_fraction` instead.
void TreeShapRecurse(const RegressionTree& tree, const double* x, double* phi,
                     int node_index, int unique_depth,
                     PathElement* parent_unique_path,
                     double parent_zero_fraction, double parent_one_fraction,
                     int parent_feature_index, int condition,
                     int condition_feature, double condition_fraction) {
  if (condition_fraction == 0.0) return;

  PathElement* unique_path = parent_unique_path + unique_depth + 1;
  std::copy(parent_unique_path, parent_unique_path + unique_depth + 1,
            unique_path);
  if (condition == 0 || condition_feature != parent_feature_index) {
    ExtendPath(unique_path, unique_depth, parent_zero_fraction,
               parent_one_fraction, parent_feature_index);
  }

  const TreeNode& node = tree.node(node_index);
  if (node.IsLeaf()) {
    for (int i = 1; i <= unique_depth; ++i) {
      const double w = UnwoundPathSum(unique_path, unique_depth, i);
      const PathElement& el = unique_path[i];
      phi[el.feature_index] += w * (el.one_fraction - el.zero_fraction) *
                               node.value * condition_fraction;
    }
    return;
  }

  const double v = x[node.feature];
  int hot, cold;
  if (std::isnan(v)) {
    hot = node.default_left ? node.left : node.right;
    cold = node.default_left ? node.right : node.left;
  } else if (v < node.threshold) {
    hot = node.left;
    cold = node.right;
  } else {
    hot = node.right;
    cold = node.left;
  }
  const double node_cover = SafeCover(node.cover);
  const double hot_zero_fraction = tree.node(hot).cover / node_cover;
  const double cold_zero_fraction = tree.node(cold).cover / node_cover;
  double incoming_zero_fraction = 1.0;
  double incoming_one_fraction = 1.0;

  // If this feature is already on the path, undo its previous contribution
  // and combine the fractions (each unique feature appears once).
  int path_index = 0;
  for (; path_index <= unique_depth; ++path_index) {
    if (unique_path[path_index].feature_index == node.feature) break;
  }
  if (path_index != unique_depth + 1) {
    incoming_zero_fraction = unique_path[path_index].zero_fraction;
    incoming_one_fraction = unique_path[path_index].one_fraction;
    UnwindPath(unique_path, unique_depth, path_index);
    unique_depth -= 1;
  }

  // Split the condition weight between the children when this node tests
  // the conditioned feature (which then stays off the path).
  double hot_condition_fraction = condition_fraction;
  double cold_condition_fraction = condition_fraction;
  if (condition > 0 && node.feature == condition_feature) {
    cold_condition_fraction = 0.0;
    unique_depth -= 1;
  } else if (condition < 0 && node.feature == condition_feature) {
    hot_condition_fraction *= hot_zero_fraction;
    cold_condition_fraction *= cold_zero_fraction;
    unique_depth -= 1;
  }

  TreeShapRecurse(tree, x, phi, hot, unique_depth + 1, unique_path,
                  hot_zero_fraction * incoming_zero_fraction,
                  incoming_one_fraction, node.feature, condition,
                  condition_feature, hot_condition_fraction);
  TreeShapRecurse(tree, x, phi, cold, unique_depth + 1, unique_path,
                  cold_zero_fraction * incoming_zero_fraction, 0.0,
                  node.feature, condition, condition_feature,
                  cold_condition_fraction);
}

/// Workspace large enough for one recursion over `tree`.
std::vector<PathElement> MakeWorkspace(const RegressionTree& tree) {
  const int maxd = tree.MaxDepth() + 2;
  return std::vector<PathElement>(
      static_cast<size_t>((maxd * (maxd + 1)) / 2 + maxd + 1));
}

/// Accumulates one tree's (possibly conditioned) SHAP values into `phi`.
void AccumulateTreeShap(const RegressionTree& tree, const double* x,
                        double* phi, int condition, int condition_feature) {
  std::vector<PathElement> workspace = MakeWorkspace(tree);
  TreeShapRecurse(tree, x, phi, 0, 0, workspace.data(), 1.0, 1.0, -1,
                  condition, condition_feature, 1.0);
}

/// Cover-weighted mean leaf value of one tree.
double TreeExpectedValue(const RegressionTree& tree, int node_index) {
  const TreeNode& node = tree.node(node_index);
  if (node.IsLeaf()) return node.value;
  const double cover = SafeCover(node.cover);
  const double wl = tree.node(node.left).cover / cover;
  const double wr = tree.node(node.right).cover / cover;
  return wl * TreeExpectedValue(tree, node.left) +
         wr * TreeExpectedValue(tree, node.right);
}

}  // namespace

TreeShap::TreeShap(const gbt::GbtModel* model) : model_(model) {
  // API contract, not input-reachable: every caller obtains the model from
  // training or a validated LoadFromFile (see the policy in util/logging.h).
  MYSAWH_CHECK(model != nullptr);
  expected_value_ = model->base_score();
  for (const auto& tree : model->trees()) {
    expected_value_ += TreeExpectedValue(tree, 0);
  }
}

std::vector<double> TreeShap::Shap(const double* row) const {
  std::vector<double> phi(static_cast<size_t>(model_->num_features()), 0.0);
  for (const auto& tree : model_->trees()) {
    AccumulateTreeShap(tree, row, phi.data(), /*condition=*/0,
                       /*condition_feature=*/-1);
  }
  return phi;
}

std::vector<double> TreeShap::ShapInteractions(const double* row) const {
  const auto m = static_cast<size_t>(model_->num_features());
  std::vector<double> interactions(m * m, 0.0);
  const std::vector<double> phi = Shap(row);
  std::vector<double> diag = phi;  // main effects start at the full values
  std::vector<double> phi_on(m), phi_off(m);
  for (size_t i = 0; i < m; ++i) {
    std::fill(phi_on.begin(), phi_on.end(), 0.0);
    std::fill(phi_off.begin(), phi_off.end(), 0.0);
    for (const auto& tree : model_->trees()) {
      AccumulateTreeShap(tree, row, phi_on.data(), /*condition=*/1,
                         static_cast<int>(i));
      AccumulateTreeShap(tree, row, phi_off.data(), /*condition=*/-1,
                         static_cast<int>(i));
    }
    for (size_t j = 0; j < m; ++j) {
      if (j == i) continue;
      const double pairwise = (phi_on[j] - phi_off[j]) / 2.0;
      interactions[i * m + j] = pairwise;
      diag[i] -= pairwise;
    }
  }
  for (size_t i = 0; i < m; ++i) interactions[i * m + i] = diag[i];
  return interactions;
}

Result<std::vector<std::vector<double>>> TreeShap::ShapBatch(
    const Dataset& data) const {
  if (data.num_features() != model_->num_features()) {
    return Status::InvalidArgument("ShapBatch: dataset width mismatch");
  }
  TraceSpan span("shap.batch", "explain");
  span.Arg("rows", data.num_rows());
  static Counter* const rows_counter =
      MetricsRegistry::Global().GetCounter("shap.batch_rows");
  rows_counter->Increment(data.num_rows());
  // Each row's attribution is an independent recursion with its own
  // workspace writing its own output slot, so the shared pool changes
  // nothing about the values — only the wall clock.
  std::vector<std::vector<double>> out(static_cast<size_t>(data.num_rows()));
  DefaultPool().ParallelFor(data.num_rows(), [&](int64_t r) {
    out[static_cast<size_t>(r)] = Shap(data.row(r));
  });
  return out;
}

}  // namespace mysawh::explain
