#include "explain/tree_shap.h"

#include <algorithm>
#include <cmath>

#include "core/audit_log.h"
#include "gbt/flat_forest.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace mysawh::explain {

namespace {

using gbt::RegressionTree;
using gbt::TreeNode;

/// One step of the feature path maintained by the TreeSHAP recursion.
struct PathElement {
  int feature_index = -1;
  double zero_fraction = 0.0;  ///< Fraction of "feature absent" paths kept.
  double one_fraction = 0.0;   ///< 1 when x follows this split, else 0.
  double pweight = 0.0;        ///< Permutation weight of this prefix length.
};

/// Grows the path by one split, updating permutation weights.
void ExtendPath(PathElement* path, int unique_depth, double zero_fraction,
                double one_fraction, int feature_index) {
  path[unique_depth].feature_index = feature_index;
  path[unique_depth].zero_fraction = zero_fraction;
  path[unique_depth].one_fraction = one_fraction;
  path[unique_depth].pweight = unique_depth == 0 ? 1.0 : 0.0;
  const double d = static_cast<double>(unique_depth) + 1.0;
  for (int i = unique_depth - 1; i >= 0; --i) {
    path[i + 1].pweight +=
        one_fraction * path[i].pweight * static_cast<double>(i + 1) / d;
    path[i].pweight = zero_fraction * path[i].pweight *
                      static_cast<double>(unique_depth - i) / d;
  }
}

/// Removes the element at `path_index`, restoring the weights ExtendPath
/// would have produced without it.
void UnwindPath(PathElement* path, int unique_depth, int path_index) {
  const double one_fraction = path[path_index].one_fraction;
  const double zero_fraction = path[path_index].zero_fraction;
  double next_one_portion = path[unique_depth].pweight;
  const double d = static_cast<double>(unique_depth) + 1.0;
  for (int i = unique_depth - 1; i >= 0; --i) {
    if (one_fraction != 0.0) {
      const double tmp = path[i].pweight;
      path[i].pweight =
          next_one_portion * d / (static_cast<double>(i + 1) * one_fraction);
      next_one_portion = tmp - path[i].pweight * zero_fraction *
                                   static_cast<double>(unique_depth - i) / d;
    } else {
      path[i].pweight = path[i].pweight * d /
                        (zero_fraction * static_cast<double>(unique_depth - i));
    }
  }
  for (int i = path_index; i < unique_depth; ++i) {
    path[i].feature_index = path[i + 1].feature_index;
    path[i].zero_fraction = path[i + 1].zero_fraction;
    path[i].one_fraction = path[i + 1].one_fraction;
  }
}

/// Total permutation weight the element at `path_index` would carry if it
/// were unwound — the w factor of the SHAP sum at a leaf.
double UnwoundPathSum(const PathElement* path, int unique_depth,
                      int path_index) {
  const double one_fraction = path[path_index].one_fraction;
  const double zero_fraction = path[path_index].zero_fraction;
  double next_one_portion = path[unique_depth].pweight;
  double total = 0.0;
  const double d = static_cast<double>(unique_depth) + 1.0;
  for (int i = unique_depth - 1; i >= 0; --i) {
    if (one_fraction != 0.0) {
      const double tmp =
          next_one_portion * d / (static_cast<double>(i + 1) * one_fraction);
      total += tmp;
      next_one_portion =
          path[i].pweight -
          tmp * zero_fraction * static_cast<double>(unique_depth - i) / d;
    } else {
      total += path[i].pweight /
               (zero_fraction * static_cast<double>(unique_depth - i) / d);
    }
  }
  return total;
}

double SafeCover(double cover) { return std::max(cover, 1e-30); }

/// Core recursion: walks every root-to-leaf path once, maintaining the set
/// of unique features on the path with their zero/one fractions.
///
/// `condition` extends the plain algorithm for interaction values
/// (Lundberg et al., Algorithm 3): 0 computes ordinary SHAP values;
/// +1 conditions on `condition_feature` being present (known), -1 on it
/// being absent — the conditioned feature is kept off the path and its
/// branch weights flow through `condition_fraction` instead.
void TreeShapRecurse(const RegressionTree& tree, const double* x, double* phi,
                     int node_index, int unique_depth,
                     PathElement* parent_unique_path,
                     double parent_zero_fraction, double parent_one_fraction,
                     int parent_feature_index, int condition,
                     int condition_feature, double condition_fraction) {
  if (condition_fraction == 0.0) return;

  PathElement* unique_path = parent_unique_path + unique_depth + 1;
  std::copy(parent_unique_path, parent_unique_path + unique_depth + 1,
            unique_path);
  if (condition == 0 || condition_feature != parent_feature_index) {
    ExtendPath(unique_path, unique_depth, parent_zero_fraction,
               parent_one_fraction, parent_feature_index);
  }

  const TreeNode& node = tree.node(node_index);
  if (node.IsLeaf()) {
    for (int i = 1; i <= unique_depth; ++i) {
      const double w = UnwoundPathSum(unique_path, unique_depth, i);
      const PathElement& el = unique_path[i];
      phi[el.feature_index] += w * (el.one_fraction - el.zero_fraction) *
                               node.value * condition_fraction;
    }
    return;
  }

  const double v = x[node.feature];
  int hot, cold;
  if (std::isnan(v)) {
    hot = node.default_left ? node.left : node.right;
    cold = node.default_left ? node.right : node.left;
  } else if (v < node.threshold) {
    hot = node.left;
    cold = node.right;
  } else {
    hot = node.right;
    cold = node.left;
  }
  const double node_cover = SafeCover(node.cover);
  const double hot_zero_fraction = tree.node(hot).cover / node_cover;
  const double cold_zero_fraction = tree.node(cold).cover / node_cover;
  double incoming_zero_fraction = 1.0;
  double incoming_one_fraction = 1.0;

  // If this feature is already on the path, undo its previous contribution
  // and combine the fractions (each unique feature appears once).
  int path_index = 0;
  for (; path_index <= unique_depth; ++path_index) {
    if (unique_path[path_index].feature_index == node.feature) break;
  }
  if (path_index != unique_depth + 1) {
    incoming_zero_fraction = unique_path[path_index].zero_fraction;
    incoming_one_fraction = unique_path[path_index].one_fraction;
    UnwindPath(unique_path, unique_depth, path_index);
    unique_depth -= 1;
  }

  // Split the condition weight between the children when this node tests
  // the conditioned feature (which then stays off the path).
  double hot_condition_fraction = condition_fraction;
  double cold_condition_fraction = condition_fraction;
  if (condition > 0 && node.feature == condition_feature) {
    cold_condition_fraction = 0.0;
    unique_depth -= 1;
  } else if (condition < 0 && node.feature == condition_feature) {
    hot_condition_fraction *= hot_zero_fraction;
    cold_condition_fraction *= cold_zero_fraction;
    unique_depth -= 1;
  }

  TreeShapRecurse(tree, x, phi, hot, unique_depth + 1, unique_path,
                  hot_zero_fraction * incoming_zero_fraction,
                  incoming_one_fraction, node.feature, condition,
                  condition_feature, hot_condition_fraction);
  TreeShapRecurse(tree, x, phi, cold, unique_depth + 1, unique_path,
                  cold_zero_fraction * incoming_zero_fraction, 0.0,
                  node.feature, condition, condition_feature,
                  cold_condition_fraction);
}

/// The condition == 0 recursion of TreeShapRecurse, specialized onto the
/// compiled flat forest: leaf-tagged child refs instead of node pointers,
/// the row's quantized bins instead of double comparisons, and the
/// compile-time cover fractions instead of per-visit divisions. Every
/// arithmetic operation matches the reference recursion operand for
/// operand, so the attributions are bit-identical.
void FlatShapRecurse(const gbt::FlatForest& flat, const uint8_t* bins,
                     double* phi, int32_t ref, int unique_depth,
                     PathElement* parent_unique_path,
                     double parent_zero_fraction, double parent_one_fraction,
                     int parent_feature_index) {
  PathElement* unique_path = parent_unique_path + unique_depth + 1;
  std::copy(parent_unique_path, parent_unique_path + unique_depth + 1,
            unique_path);
  ExtendPath(unique_path, unique_depth, parent_zero_fraction,
             parent_one_fraction, parent_feature_index);

  if (ref < 0) {
    const double value = flat.leaf_value(~ref);
    for (int i = 1; i <= unique_depth; ++i) {
      const double w = UnwoundPathSum(unique_path, unique_depth, i);
      const PathElement& el = unique_path[i];
      phi[el.feature_index] +=
          w * (el.one_fraction - el.zero_fraction) * value;
    }
    return;
  }

  const int feature = flat.feature(ref);
  const uint8_t bin = bins[feature];
  const bool left_hot = bin == gbt::kFlatMissingBin
                            ? flat.default_left(ref)
                            : bin < flat.bin_threshold(ref);
  const int32_t hot = left_hot ? flat.left(ref) : flat.right(ref);
  const int32_t cold = left_hot ? flat.right(ref) : flat.left(ref);
  const double hot_zero_fraction =
      left_hot ? flat.left_fraction(ref) : flat.right_fraction(ref);
  const double cold_zero_fraction =
      left_hot ? flat.right_fraction(ref) : flat.left_fraction(ref);
  double incoming_zero_fraction = 1.0;
  double incoming_one_fraction = 1.0;

  int path_index = 0;
  for (; path_index <= unique_depth; ++path_index) {
    if (unique_path[path_index].feature_index == feature) break;
  }
  if (path_index != unique_depth + 1) {
    incoming_zero_fraction = unique_path[path_index].zero_fraction;
    incoming_one_fraction = unique_path[path_index].one_fraction;
    UnwindPath(unique_path, unique_depth, path_index);
    unique_depth -= 1;
  }

  FlatShapRecurse(flat, bins, phi, hot, unique_depth + 1, unique_path,
                  hot_zero_fraction * incoming_zero_fraction,
                  incoming_one_fraction, feature);
  FlatShapRecurse(flat, bins, phi, cold, unique_depth + 1, unique_path,
                  cold_zero_fraction * incoming_zero_fraction, 0.0, feature);
}

/// Workspace size for any tree of the flat forest (the forest-wide depth
/// bounds every per-tree recursion; extra slots are never read).
size_t FlatWorkspaceSize(const gbt::FlatForest& flat) {
  const int maxd = flat.max_depth() + 2;
  return static_cast<size_t>((maxd * (maxd + 1)) / 2 + maxd + 1);
}

/// One row's attributions over every tree of the flat forest. `workspace`
/// must hold FlatWorkspaceSize(flat) elements; it is reusable across rows
/// and trees because every slot the recursion reads was written earlier in
/// the same recursion (the root ExtendPath fully initializes element 0).
void FlatShapRow(const gbt::FlatForest& flat, const uint8_t* bins,
                 PathElement* workspace, double* phi) {
  for (int t = 0; t < flat.num_trees(); ++t) {
    FlatShapRecurse(flat, bins, phi, flat.root(t), 0, workspace, 1.0, 1.0,
                    -1);
  }
}

// ---------------------------------------------------------------------------
// Batch pattern tables.
//
// For a fixed tree, everything the recursion computes at a leaf is a
// function of ONE per-row input: the direction the row takes at each of the
// leaf's ancestors. The split fractions, the leaf value, the unique-path
// feature set — all row-independent; the row only decides which child is
// "hot" (one_fraction 1) at each ancestor. A leaf at depth d therefore has
// exactly 2^d possible addend vectors. When a batch has more rows than
// patterns, running the recursion per row repeats the same arithmetic, so
// ShapBatch instead enumerates every (leaf, pattern) pair once per batch,
// storing each addend `w * (one_fraction - zero_fraction) * value` the
// recursion would produce, and each row replays a table-lookup walk.
//
// Bit-identity with the per-row recursion holds because (a) the stored
// addends come out of the SAME recursion code, just driven by an enumerated
// direction bit instead of the row's bin comparison, and (b) the replay
// adds them to phi in the SAME order the recursion would: trees ascending,
// leaves in hot-child-first DFS order within a tree, path positions
// ascending within a leaf.
// ---------------------------------------------------------------------------

/// Ancestor direction patterns wider than this fall back to the per-row
/// recursion (2^26 patterns on one leaf is already far past the point where
/// the table could pay for itself, and the cap keeps the pattern index well
/// inside uint32 and the replay stack bounded).
constexpr int kPatternDepthCap = 26;
/// Upper bound on total table payload before falling back.
constexpr double kPatternTableMaxBytes = 64.0 * 1024 * 1024;

/// One leaf's slice of a tree's pattern table.
struct PatternLeaf {
  int32_t depth = -1;   ///< Ancestors on the root path = pattern bits.
  int32_t unique = 0;   ///< Unique path features = addends per pattern.
  int32_t feat_off = 0;  ///< Start of the phi indices in `feats`.
  int64_t val_off = 0;   ///< Addends at val_off + pattern * unique.
};

/// Precomputed SHAP addends of every (leaf, ancestor-pattern) pair of one
/// tree. Bit i of a pattern is 1 when the row goes left at the i-th
/// internal node (root first) of the leaf's path.
struct PatternTable {
  std::vector<PatternLeaf> leaves;  ///< Indexed by leaf id - leaf_begin.
  std::vector<int32_t> feats;
  std::vector<double> vals;
  int32_t leaf_begin = 0;
};

/// Sizes both batch strategies: the per-row recursion visits every leaf
/// once per row, the table builder visits leaf l 2^depth(l) times. Doubles
/// to keep pathological depths finite.
void CountPatternVisits(const gbt::FlatForest& flat, int32_t ref, int depth,
                        int* deepest, double* pattern_visits) {
  if (ref < 0) {
    *deepest = std::max(*deepest, depth);
    *pattern_visits += std::ldexp(1.0, depth);
    return;
  }
  CountPatternVisits(flat, flat.left(ref), depth + 1, deepest,
                     pattern_visits);
  CountPatternVisits(flat, flat.right(ref), depth + 1, deepest,
                     pattern_visits);
}

/// FlatShapRecurse with the row's direction bit replaced by an enumeration
/// of both directions: at every internal node the recursion forks on
/// b = "row goes left here", so each leaf is reached once per ancestor
/// pattern, carrying exactly the path state the per-row recursion would
/// have for a row with those directions. At the leaf the addends are
/// stored instead of added.
void BuildPatternsRecurse(const gbt::FlatForest& flat, int32_t ref,
                          int unique_depth, PathElement* parent_unique_path,
                          double parent_zero_fraction,
                          double parent_one_fraction,
                          int parent_feature_index, uint32_t pattern,
                          int depth, PatternTable* tbl) {
  PathElement* unique_path = parent_unique_path + unique_depth + 1;
  std::copy(parent_unique_path, parent_unique_path + unique_depth + 1,
            unique_path);
  ExtendPath(unique_path, unique_depth, parent_zero_fraction,
             parent_one_fraction, parent_feature_index);

  if (ref < 0) {
    const double value = flat.leaf_value(~ref);
    PatternLeaf& lt = tbl->leaves[static_cast<size_t>(~ref - tbl->leaf_begin)];
    if (lt.depth < 0) {  // First pattern to reach this leaf sizes its slice.
      lt.depth = depth;
      lt.unique = unique_depth;
      lt.feat_off = static_cast<int32_t>(tbl->feats.size());
      for (int i = 1; i <= unique_depth; ++i) {
        tbl->feats.push_back(unique_path[i].feature_index);
      }
      lt.val_off = static_cast<int64_t>(tbl->vals.size());
      tbl->vals.resize(tbl->vals.size() +
                       (size_t{1} << depth) * static_cast<size_t>(unique_depth));
    }
    double* slot = tbl->vals.data() + lt.val_off +
                   static_cast<int64_t>(pattern) * lt.unique;
    for (int i = 1; i <= unique_depth; ++i) {
      const double w = UnwoundPathSum(unique_path, unique_depth, i);
      const PathElement& el = unique_path[i];
      slot[i - 1] = w * (el.one_fraction - el.zero_fraction) * value;
    }
    return;
  }

  const int feature = flat.feature(ref);
  double incoming_zero_fraction = 1.0;
  double incoming_one_fraction = 1.0;
  int path_index = 0;
  for (; path_index <= unique_depth; ++path_index) {
    if (unique_path[path_index].feature_index == feature) break;
  }
  if (path_index != unique_depth + 1) {
    incoming_zero_fraction = unique_path[path_index].zero_fraction;
    incoming_one_fraction = unique_path[path_index].one_fraction;
    UnwindPath(unique_path, unique_depth, path_index);
    unique_depth -= 1;
  }

  for (uint32_t b = 0; b < 2; ++b) {
    const bool left_hot = b == 1;
    const int32_t hot = left_hot ? flat.left(ref) : flat.right(ref);
    const int32_t cold = left_hot ? flat.right(ref) : flat.left(ref);
    const double hot_zero_fraction =
        left_hot ? flat.left_fraction(ref) : flat.right_fraction(ref);
    const double cold_zero_fraction =
        left_hot ? flat.right_fraction(ref) : flat.left_fraction(ref);
    const uint32_t child_pattern = pattern | (b << depth);
    BuildPatternsRecurse(flat, hot, unique_depth + 1, unique_path,
                         hot_zero_fraction * incoming_zero_fraction,
                         incoming_one_fraction, feature, child_pattern,
                         depth + 1, tbl);
    BuildPatternsRecurse(flat, cold, unique_depth + 1, unique_path,
                         cold_zero_fraction * incoming_zero_fraction, 0.0,
                         feature, child_pattern, depth + 1, tbl);
  }
}

std::vector<PatternTable> BuildPatternTables(const gbt::FlatForest& flat) {
  std::vector<PatternTable> tables(static_cast<size_t>(flat.num_trees()));
  std::vector<PathElement> workspace(FlatWorkspaceSize(flat));
  for (int t = 0; t < flat.num_trees(); ++t) {
    PatternTable& tbl = tables[static_cast<size_t>(t)];
    tbl.leaf_begin = flat.tree_leaf_begin(t);
    tbl.leaves.assign(
        static_cast<size_t>(flat.tree_leaf_end(t) - tbl.leaf_begin),
        PatternLeaf{});
    BuildPatternsRecurse(flat, flat.root(t), 0, workspace.data(), 1.0, 1.0,
                         -1, 0, 0, &tbl);
  }
  return tables;
}

/// One row x one tree from the table: a DFS over the internal nodes
/// computes the row's direction bits (the pattern prefix) and adds each
/// leaf's precomputed addends. The cold child is pushed first so the hot
/// child pops first — the recursion's hot-then-cold leaf order, which
/// keeps the phi accumulation order (and so the rounding) identical.
void PatternReplayTree(const gbt::FlatForest& flat, const PatternTable& tbl,
                       const uint8_t* bins, int32_t root, double* phi) {
  struct Frame {
    int32_t ref;
    uint32_t pattern;
    int32_t depth;
  };
  Frame stack[kPatternDepthCap + 2];
  int top = 0;
  stack[top++] = {root, 0, 0};
  while (top > 0) {
    const Frame e = stack[--top];
    if (e.ref < 0) {
      const PatternLeaf& lt =
          tbl.leaves[static_cast<size_t>(~e.ref - tbl.leaf_begin)];
      const double* v = tbl.vals.data() + lt.val_off +
                        static_cast<int64_t>(e.pattern) * lt.unique;
      const int32_t* ff = tbl.feats.data() + lt.feat_off;
      for (int32_t i = 0; i < lt.unique; ++i) phi[ff[i]] += v[i];
      continue;
    }
    const uint8_t bin = bins[flat.feature(e.ref)];
    const bool go_left = bin == gbt::kFlatMissingBin
                             ? flat.default_left(e.ref)
                             : bin < flat.bin_threshold(e.ref);
    const uint32_t p =
        e.pattern | (static_cast<uint32_t>(go_left) << e.depth);
    const int32_t d = e.depth + 1;
    if (go_left) {
      stack[top++] = {flat.right(e.ref), p, d};
      stack[top++] = {flat.left(e.ref), p, d};
    } else {
      stack[top++] = {flat.left(e.ref), p, d};
      stack[top++] = {flat.right(e.ref), p, d};
    }
  }
}

void PatternShapRow(const gbt::FlatForest& flat,
                    const std::vector<PatternTable>& tables,
                    const uint8_t* bins, double* phi) {
  for (int t = 0; t < flat.num_trees(); ++t) {
    PatternReplayTree(flat, tables[static_cast<size_t>(t)], bins,
                      flat.root(t), phi);
  }
}

/// Tables win when the batch repeats more leaf visits than the builder
/// spends enumerating patterns (with a 2x margin for the replay's own
/// cost), and the table fits the depth and memory caps.
bool UsePatternTables(const gbt::FlatForest& flat, int64_t rows) {
  int deepest = 0;
  double pattern_visits = 0.0;
  for (int t = 0; t < flat.num_trees(); ++t) {
    CountPatternVisits(flat, flat.root(t), 0, &deepest, &pattern_visits);
  }
  if (deepest > kPatternDepthCap) return false;
  // Addends per pattern <= depth, so this bounds the payload from counts
  // already in hand.
  if (pattern_visits * deepest * 8 > kPatternTableMaxBytes) return false;
  const double direct_visits =
      static_cast<double>(rows) * static_cast<double>(flat.num_leaves());
  return 2.0 * pattern_visits <= direct_visits;
}

/// Workspace large enough for one recursion over `tree`.
std::vector<PathElement> MakeWorkspace(const RegressionTree& tree) {
  const int maxd = tree.MaxDepth() + 2;
  return std::vector<PathElement>(
      static_cast<size_t>((maxd * (maxd + 1)) / 2 + maxd + 1));
}

/// Accumulates one tree's (possibly conditioned) SHAP values into `phi`.
void AccumulateTreeShap(const RegressionTree& tree, const double* x,
                        double* phi, int condition, int condition_feature) {
  std::vector<PathElement> workspace = MakeWorkspace(tree);
  TreeShapRecurse(tree, x, phi, 0, 0, workspace.data(), 1.0, 1.0, -1,
                  condition, condition_feature, 1.0);
}

/// Cover-weighted mean leaf value of one tree.
double TreeExpectedValue(const RegressionTree& tree, int node_index) {
  const TreeNode& node = tree.node(node_index);
  if (node.IsLeaf()) return node.value;
  const double cover = SafeCover(node.cover);
  const double wl = tree.node(node.left).cover / cover;
  const double wr = tree.node(node.right).cover / cover;
  return wl * TreeExpectedValue(tree, node.left) +
         wr * TreeExpectedValue(tree, node.right);
}

}  // namespace

TreeShap::TreeShap(const gbt::GbtModel* model) : model_(model) {
  // API contract, not input-reachable: every caller obtains the model from
  // training or a validated LoadFromFile (see the policy in util/logging.h).
  MYSAWH_CHECK(model != nullptr);
  expected_value_ = model->base_score();
  for (const auto& tree : model->trees()) {
    expected_value_ += TreeExpectedValue(tree, 0);
  }
}

std::vector<double> TreeShap::Shap(const double* row) const {
  std::vector<double> phi(static_cast<size_t>(model_->num_features()), 0.0);
  for (const auto& tree : model_->trees()) {
    AccumulateTreeShap(tree, row, phi.data(), /*condition=*/0,
                       /*condition_feature=*/-1);
  }
  return phi;
}

std::vector<double> TreeShap::ShapInteractions(const double* row) const {
  const auto m = static_cast<size_t>(model_->num_features());
  std::vector<double> interactions(m * m, 0.0);
  const std::vector<double> phi = Shap(row);
  std::vector<double> diag = phi;  // main effects start at the full values
  std::vector<double> phi_on(m), phi_off(m);
  for (size_t i = 0; i < m; ++i) {
    std::fill(phi_on.begin(), phi_on.end(), 0.0);
    std::fill(phi_off.begin(), phi_off.end(), 0.0);
    for (const auto& tree : model_->trees()) {
      AccumulateTreeShap(tree, row, phi_on.data(), /*condition=*/1,
                         static_cast<int>(i));
      AccumulateTreeShap(tree, row, phi_off.data(), /*condition=*/-1,
                         static_cast<int>(i));
    }
    for (size_t j = 0; j < m; ++j) {
      if (j == i) continue;
      const double pairwise = (phi_on[j] - phi_off[j]) / 2.0;
      interactions[i * m + j] = pairwise;
      diag[i] -= pairwise;
    }
  }
  for (size_t i = 0; i < m; ++i) interactions[i * m + i] = diag[i];
  return interactions;
}

Result<std::vector<std::vector<double>>> TreeShap::ShapBatch(
    const Dataset& data, ThreadPool* pool) const {
  const gbt::FlatForest* flat = model_->flat_forest();
  if (flat == nullptr) return ShapBatchReference(data, pool);
  if (data.num_features() != model_->num_features()) {
    return Status::InvalidArgument("ShapBatch: dataset width mismatch");
  }
  TraceSpan span("shap.batch", "explain");
  span.Arg("rows", data.num_rows());
  span.Arg("flat", 1);
  static Counter* const rows_counter =
      MetricsRegistry::Global().GetCounter("shap.batch_rows");
  rows_counter->Increment(data.num_rows());
  static Counter* const flat_rows_counter =
      MetricsRegistry::Global().GetCounter("shap.batch_flat_rows");
  flat_rows_counter->Increment(data.num_rows());
  // Quantize the whole batch once; each row then runs the flat recursion
  // with ONE workspace for all its trees (the reference path allocates one
  // per (row, tree) and re-derives each tree's depth recursively).
  const std::vector<uint8_t> bins = flat->BinMatrix(data);
  const size_t workspace_size = FlatWorkspaceSize(*flat);
  const auto m = static_cast<size_t>(model_->num_features());
  std::vector<std::vector<double>> out(static_cast<size_t>(data.num_rows()));
  ThreadPool& workers = pool != nullptr ? *pool : DefaultPool();
  // Large batches amortize the recursion itself: precompute every
  // (leaf, ancestor-pattern) addend once, then replay per row (bit-identical
  // — see the pattern-table block above). Small batches would pay more
  // building the tables than the recursion costs, so they keep the
  // per-row path.
  const bool tables_pay = UsePatternTables(*flat, data.num_rows());
  span.Arg("pattern_tables", tables_pay ? 1 : 0);
  if (tables_pay) {
    static Counter* const table_rows_counter =
        MetricsRegistry::Global().GetCounter("shap.batch_table_rows");
    table_rows_counter->Increment(data.num_rows());
    const std::vector<PatternTable> tables = BuildPatternTables(*flat);
    workers.ParallelFor(data.num_rows(), [&](int64_t r) {
      std::vector<double> phi(m, 0.0);
      PatternShapRow(*flat, tables, bins.data() + static_cast<size_t>(r) * m,
                     phi.data());
      out[static_cast<size_t>(r)] = std::move(phi);
    });
  } else {
    workers.ParallelFor(data.num_rows(), [&](int64_t r) {
      std::vector<PathElement> workspace(workspace_size);
      std::vector<double> phi(m, 0.0);
      FlatShapRow(*flat, bins.data() + static_cast<size_t>(r) * m,
                  workspace.data(), phi.data());
      out[static_cast<size_t>(r)] = std::move(phi);
    });
  }
  // Audit hook: on the calling thread after the parallel loop, so
  // recording can never perturb the attributions it logs.
  if (core::AuditEnabled()) {
    core::AuditLog::Global().RecordShapBatch(model_->fingerprint(), data, out);
  }
  return out;
}

Result<std::vector<std::vector<double>>> TreeShap::ShapBatchReference(
    const Dataset& data, ThreadPool* pool) const {
  if (data.num_features() != model_->num_features()) {
    return Status::InvalidArgument("ShapBatch: dataset width mismatch");
  }
  TraceSpan span("shap.batch", "explain");
  span.Arg("rows", data.num_rows());
  span.Arg("flat", 0);
  static Counter* const rows_counter =
      MetricsRegistry::Global().GetCounter("shap.batch_rows");
  rows_counter->Increment(data.num_rows());
  // Each row's attribution is an independent recursion with its own
  // workspace writing its own output slot, so the pool changes nothing
  // about the values — only the wall clock.
  std::vector<std::vector<double>> out(static_cast<size_t>(data.num_rows()));
  ThreadPool& workers = pool != nullptr ? *pool : DefaultPool();
  workers.ParallelFor(data.num_rows(), [&](int64_t r) {
    out[static_cast<size_t>(r)] = Shap(data.row(r));
  });
  if (core::AuditEnabled()) {
    core::AuditLog::Global().RecordShapBatch(model_->fingerprint(), data, out);
  }
  return out;
}

}  // namespace mysawh::explain
