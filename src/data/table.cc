#include "data/table.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "util/csv.h"
#include "util/string_util.h"

namespace mysawh {

namespace {

/// Round-trip formatting for CSV cells: %.17g is exact for doubles but we
/// first try shorter representations for readability.
std::string FormatCell(double value) {
  if (std::isnan(value)) return "";
  char buf[64];
  for (int precision : {6, 9, 12, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == value) break;
  }
  return buf;
}

}  // namespace

int64_t Column::size() const {
  if (is_numeric()) return static_cast<int64_t>(numeric().size());
  return static_cast<int64_t>(strings().size());
}

Status Table::CheckLength(size_t n) const {
  if (!columns_.empty() && static_cast<int64_t>(n) != num_rows_) {
    return Status::InvalidArgument(
        "column length " + std::to_string(n) + " does not match table rows " +
        std::to_string(num_rows_));
  }
  return Status::Ok();
}

Status Table::AddNumericColumn(std::string name, std::vector<double> values) {
  if (HasColumn(name)) {
    return Status::AlreadyExists("duplicate column: " + name);
  }
  MYSAWH_RETURN_NOT_OK(CheckLength(values.size()));
  num_rows_ = static_cast<int64_t>(values.size());
  columns_.push_back(Column{std::move(name), std::move(values)});
  return Status::Ok();
}

Status Table::AddStringColumn(std::string name,
                              std::vector<std::string> values) {
  if (HasColumn(name)) {
    return Status::AlreadyExists("duplicate column: " + name);
  }
  MYSAWH_RETURN_NOT_OK(CheckLength(values.size()));
  num_rows_ = static_cast<int64_t>(values.size());
  columns_.push_back(Column{std::move(name), std::move(values)});
  return Status::Ok();
}

std::vector<std::string> Table::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const auto& c : columns_) names.push_back(c.name);
  return names;
}

bool Table::HasColumn(const std::string& name) const {
  for (const auto& c : columns_) {
    if (c.name == name) return true;
  }
  return false;
}

Result<const Column*> Table::GetColumn(const std::string& name) const {
  for (const auto& c : columns_) {
    if (c.name == name) return &c;
  }
  return Status::NotFound("column not found: " + name);
}

Result<const std::vector<double>*> Table::GetNumeric(
    const std::string& name) const {
  MYSAWH_ASSIGN_OR_RETURN(const Column* col, GetColumn(name));
  if (!col->is_numeric()) {
    return Status::InvalidArgument("column is not numeric: " + name);
  }
  return &col->numeric();
}

Result<const std::vector<std::string>*> Table::GetStrings(
    const std::string& name) const {
  MYSAWH_ASSIGN_OR_RETURN(const Column* col, GetColumn(name));
  if (col->is_numeric()) {
    return Status::InvalidArgument("column is not string-typed: " + name);
  }
  return &col->strings();
}

Result<Table> Table::FilterRows(const std::vector<bool>& keep) const {
  if (static_cast<int64_t>(keep.size()) != num_rows_) {
    return Status::InvalidArgument("FilterRows mask length mismatch");
  }
  Table out;
  for (const auto& col : columns_) {
    if (col.is_numeric()) {
      std::vector<double> values;
      for (size_t i = 0; i < keep.size(); ++i) {
        if (keep[i]) values.push_back(col.numeric()[i]);
      }
      MYSAWH_RETURN_NOT_OK(out.AddNumericColumn(col.name, std::move(values)));
    } else {
      std::vector<std::string> values;
      for (size_t i = 0; i < keep.size(); ++i) {
        if (keep[i]) values.push_back(col.strings()[i]);
      }
      MYSAWH_RETURN_NOT_OK(out.AddStringColumn(col.name, std::move(values)));
    }
  }
  return out;
}

Result<Table> Table::SelectColumns(
    const std::vector<std::string>& names) const {
  Table out;
  for (const auto& name : names) {
    MYSAWH_ASSIGN_OR_RETURN(const Column* col, GetColumn(name));
    if (col->is_numeric()) {
      MYSAWH_RETURN_NOT_OK(out.AddNumericColumn(col->name, col->numeric()));
    } else {
      MYSAWH_RETURN_NOT_OK(out.AddStringColumn(col->name, col->strings()));
    }
  }
  return out;
}

Status Table::Append(const Table& other) {
  if (other.num_columns() != num_columns()) {
    return Status::InvalidArgument("Append: schema width mismatch");
  }
  for (int64_t i = 0; i < num_columns(); ++i) {
    const Column& dst = columns_[static_cast<size_t>(i)];
    const Column& src = other.columns_[static_cast<size_t>(i)];
    if (dst.name != src.name || dst.is_numeric() != src.is_numeric()) {
      return Status::InvalidArgument("Append: schema mismatch at column " +
                                     dst.name);
    }
  }
  for (int64_t i = 0; i < num_columns(); ++i) {
    Column& dst = columns_[static_cast<size_t>(i)];
    const Column& src = other.columns_[static_cast<size_t>(i)];
    if (dst.is_numeric()) {
      dst.numeric().insert(dst.numeric().end(), src.numeric().begin(),
                           src.numeric().end());
    } else {
      dst.strings().insert(dst.strings().end(), src.strings().begin(),
                           src.strings().end());
    }
  }
  num_rows_ += other.num_rows_;
  return Status::Ok();
}

Status Table::ToCsvFile(const std::string& path) const {
  CsvDocument doc;
  doc.header = ColumnNames();
  doc.rows.resize(static_cast<size_t>(num_rows_));
  for (auto& row : doc.rows) row.resize(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    const Column& col = columns_[c];
    for (int64_t r = 0; r < num_rows_; ++r) {
      const auto ri = static_cast<size_t>(r);
      doc.rows[ri][c] =
          col.is_numeric() ? FormatCell(col.numeric()[ri]) : col.strings()[ri];
    }
  }
  return WriteCsv(path, doc);
}

Result<Table> Table::FromCsvFile(const std::string& path) {
  MYSAWH_ASSIGN_OR_RETURN(CsvDocument doc, ReadCsv(path));
  Table out;
  for (size_t c = 0; c < doc.header.size(); ++c) {
    bool numeric = true;
    for (const auto& row : doc.rows) {
      const std::string cell = Trim(row[c]);
      if (cell.empty() || cell == "nan" || cell == "NaN" || cell == "NA") {
        continue;
      }
      if (!ParseDouble(cell).ok()) {
        numeric = false;
        break;
      }
    }
    if (numeric) {
      std::vector<double> values;
      values.reserve(doc.rows.size());
      for (const auto& row : doc.rows) {
        MYSAWH_ASSIGN_OR_RETURN(double v, ParseDoubleAllowMissing(row[c]));
        values.push_back(v);
      }
      MYSAWH_RETURN_NOT_OK(
          out.AddNumericColumn(doc.header[c], std::move(values)));
    } else {
      std::vector<std::string> values;
      values.reserve(doc.rows.size());
      for (const auto& row : doc.rows) values.push_back(row[c]);
      MYSAWH_RETURN_NOT_OK(
          out.AddStringColumn(doc.header[c], std::move(values)));
    }
  }
  return out;
}

}  // namespace mysawh
