#include "data/dataset.h"

#include <cmath>

namespace mysawh {

Dataset Dataset::Create(std::vector<std::string> feature_names) {
  Dataset ds;
  ds.feature_names_ = std::move(feature_names);
  return ds;
}

Result<Dataset> Dataset::FromTable(
    const Table& table, const std::vector<std::string>& feature_columns,
    const std::string& label_column,
    const std::vector<std::string>& attr_columns) {
  Dataset ds = Create(feature_columns);
  MYSAWH_ASSIGN_OR_RETURN(const std::vector<double>* labels,
                          table.GetNumeric(label_column));
  std::vector<const std::vector<double>*> cols;
  cols.reserve(feature_columns.size());
  for (const auto& name : feature_columns) {
    MYSAWH_ASSIGN_OR_RETURN(const std::vector<double>* col,
                            table.GetNumeric(name));
    cols.push_back(col);
  }
  const int64_t n = table.num_rows();
  ds.features_.resize(static_cast<size_t>(n) * feature_columns.size());
  ds.labels_.assign(labels->begin(), labels->end());
  ds.num_rows_ = n;
  for (int64_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < cols.size(); ++c) {
      ds.features_[static_cast<size_t>(r) * cols.size() + c] =
          (*cols[c])[static_cast<size_t>(r)];
    }
  }
  for (const auto& name : attr_columns) {
    MYSAWH_ASSIGN_OR_RETURN(const std::vector<double>* col,
                            table.GetNumeric(name));
    std::vector<int64_t> values;
    values.reserve(col->size());
    for (double v : *col) {
      if (std::isnan(v) || v != std::floor(v)) {
        return Status::InvalidArgument("attribute column " + name +
                                       " has non-integral values");
      }
      values.push_back(static_cast<int64_t>(v));
    }
    MYSAWH_RETURN_NOT_OK(ds.SetAttribute(name, std::move(values)));
  }
  return ds;
}

Result<int> Dataset::FeatureIndex(const std::string& name) const {
  for (size_t i = 0; i < feature_names_.size(); ++i) {
    if (feature_names_[i] == name) return static_cast<int>(i);
  }
  return Status::NotFound("feature not found: " + name);
}

Status Dataset::AddRow(const std::vector<double>& features, double label) {
  if (static_cast<int64_t>(features.size()) != num_features()) {
    return Status::InvalidArgument("AddRow width mismatch");
  }
  if (!attributes_.empty()) {
    return Status::FailedPrecondition(
        "AddRow after attributes were attached would desynchronize lengths");
  }
  features_.insert(features_.end(), features.begin(), features.end());
  labels_.push_back(label);
  ++num_rows_;
  return Status::Ok();
}

std::vector<double> Dataset::FeatureColumn(int64_t feature) const {
  std::vector<double> out(static_cast<size_t>(num_rows_));
  for (int64_t r = 0; r < num_rows_; ++r) {
    out[static_cast<size_t>(r)] = At(r, feature);
  }
  return out;
}

Status Dataset::SetAttribute(const std::string& name,
                             std::vector<int64_t> values) {
  if (static_cast<int64_t>(values.size()) != num_rows_) {
    return Status::InvalidArgument("attribute length mismatch for " + name);
  }
  attributes_[name] = std::move(values);
  return Status::Ok();
}

bool Dataset::HasAttribute(const std::string& name) const {
  return attributes_.count(name) > 0;
}

Result<const std::vector<int64_t>*> Dataset::Attribute(
    const std::string& name) const {
  auto it = attributes_.find(name);
  if (it == attributes_.end()) {
    return Status::NotFound("attribute not found: " + name);
  }
  return &it->second;
}

Result<Dataset> Dataset::Take(const std::vector<int64_t>& indices) const {
  Dataset out = Create(feature_names_);
  const auto nf = static_cast<size_t>(num_features());
  out.features_.resize(indices.size() * nf);
  out.labels_.resize(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t r = indices[i];
    if (r < 0 || r >= num_rows_) {
      return Status::OutOfRange("Take index out of range");
    }
    for (size_t c = 0; c < nf; ++c) {
      out.features_[i * nf + c] = features_[static_cast<size_t>(r) * nf + c];
    }
    out.labels_[i] = labels_[static_cast<size_t>(r)];
  }
  out.num_rows_ = static_cast<int64_t>(indices.size());
  for (const auto& [name, values] : attributes_) {
    std::vector<int64_t> taken(indices.size());
    for (size_t i = 0; i < indices.size(); ++i) {
      taken[i] = values[static_cast<size_t>(indices[i])];
    }
    out.attributes_[name] = std::move(taken);
  }
  return out;
}

Result<Table> Dataset::ToTable() const {
  Table table;
  for (int64_t f = 0; f < num_features(); ++f) {
    MYSAWH_RETURN_NOT_OK(table.AddNumericColumn(
        feature_names_[static_cast<size_t>(f)], FeatureColumn(f)));
  }
  MYSAWH_RETURN_NOT_OK(table.AddNumericColumn("label", labels_));
  for (const auto& [name, values] : attributes_) {
    std::vector<double> column;
    column.reserve(values.size());
    for (int64_t v : values) column.push_back(static_cast<double>(v));
    MYSAWH_RETURN_NOT_OK(table.AddNumericColumn(name, std::move(column)));
  }
  return table;
}

Status Dataset::Append(const Dataset& other) {
  if (other.feature_names_ != feature_names_) {
    return Status::InvalidArgument("Append: feature schema mismatch");
  }
  if (attributes_.size() != other.attributes_.size()) {
    return Status::InvalidArgument("Append: attribute set mismatch");
  }
  for (const auto& [name, values] : attributes_) {
    (void)values;
    if (!other.HasAttribute(name)) {
      return Status::InvalidArgument("Append: missing attribute " + name);
    }
  }
  features_.insert(features_.end(), other.features_.begin(),
                   other.features_.end());
  labels_.insert(labels_.end(), other.labels_.begin(), other.labels_.end());
  for (auto& [name, values] : attributes_) {
    const auto& src = other.attributes_.at(name);
    values.insert(values.end(), src.begin(), src.end());
  }
  num_rows_ += other.num_rows_;
  return Status::Ok();
}

}  // namespace mysawh
