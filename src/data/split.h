#ifndef MYSAWH_DATA_SPLIT_H_
#define MYSAWH_DATA_SPLIT_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace mysawh {

/// Row indices of a train/test partition.
struct TrainTestIndices {
  std::vector<int64_t> train;
  std::vector<int64_t> test;
};

/// Shuffled train/test split: `test_fraction` of the n rows go to test.
/// Requires n > 0 and test_fraction in (0, 1); both resulting parts are
/// guaranteed non-empty.
Result<TrainTestIndices> TrainTestSplit(int64_t n, double test_fraction,
                                        Rng* rng);

/// Train/test split that keeps all rows of a group (e.g. one patient's
/// samples) on the same side, preventing leakage of patient identity across
/// the split. `groups[i]` is row i's group key.
Result<TrainTestIndices> GroupTrainTestSplit(const std::vector<int64_t>& groups,
                                             double test_fraction, Rng* rng);

/// Shuffled train/test split preserving class proportions on both sides.
/// `labels` must be integral class ids; every class with at least 2 members
/// contributes to both sides.
Result<TrainTestIndices> StratifiedTrainTestSplit(
    const std::vector<double>& labels, double test_fraction, Rng* rng);

/// One fold of a cross-validation: rows used for training and validation.
struct Fold {
  std::vector<int64_t> train;
  std::vector<int64_t> validation;
};

/// Standard shuffled K-fold CV over n rows. Requires 2 <= k <= n.
Result<std::vector<Fold>> KFoldSplit(int64_t n, int k, Rng* rng);

/// Stratified K-fold for binary/integer labels: each fold's validation set
/// preserves class proportions (used for the imbalanced Falls outcome).
Result<std::vector<Fold>> StratifiedKFoldSplit(
    const std::vector<double>& labels, int k, Rng* rng);

}  // namespace mysawh

#endif  // MYSAWH_DATA_SPLIT_H_
