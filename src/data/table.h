#ifndef MYSAWH_DATA_TABLE_H_
#define MYSAWH_DATA_TABLE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/status.h"

namespace mysawh {

/// Column payload: either numeric (missing values are quiet NaN) or string
/// (missing values are empty strings). Ordinal/categorical PRO answers are
/// stored numerically, matching how the paper's pipeline treats them.
using ColumnData = std::variant<std::vector<double>, std::vector<std::string>>;

/// A named column.
struct Column {
  std::string name;
  ColumnData data;

  /// Number of entries.
  int64_t size() const;
  bool is_numeric() const {
    return std::holds_alternative<std::vector<double>>(data);
  }
  /// Precondition: is_numeric().
  const std::vector<double>& numeric() const {
    return std::get<std::vector<double>>(data);
  }
  std::vector<double>& numeric() { return std::get<std::vector<double>>(data); }
  /// Precondition: !is_numeric().
  const std::vector<std::string>& strings() const {
    return std::get<std::vector<std::string>>(data);
  }
  std::vector<std::string>& strings() {
    return std::get<std::vector<std::string>>(data);
  }
};

/// An in-memory columnar table with unique column names and equal column
/// lengths — the interchange format between the cohort simulator, the
/// sample-set builders, and CSV files.
class Table {
 public:
  Table() = default;

  /// Appends a numeric column. Fails on duplicate name or length mismatch
  /// with existing columns.
  Status AddNumericColumn(std::string name, std::vector<double> values);
  /// Appends a string column with the same constraints.
  Status AddStringColumn(std::string name, std::vector<std::string> values);

  int64_t num_rows() const { return num_rows_; }
  int64_t num_columns() const { return static_cast<int64_t>(columns_.size()); }

  /// All column names in insertion order.
  std::vector<std::string> ColumnNames() const;

  /// Whether a column exists.
  bool HasColumn(const std::string& name) const;

  /// Column lookup by name.
  Result<const Column*> GetColumn(const std::string& name) const;
  /// Numeric column lookup; fails if missing or non-numeric.
  Result<const std::vector<double>*> GetNumeric(const std::string& name) const;
  /// String column lookup; fails if missing or non-string.
  Result<const std::vector<std::string>*> GetStrings(
      const std::string& name) const;

  /// Column access by position (0 <= i < num_columns()).
  const Column& column(int64_t i) const { return columns_[static_cast<size_t>(i)]; }

  /// Returns a table containing only the rows where `keep[row]` is true.
  /// `keep` must have num_rows() entries.
  Result<Table> FilterRows(const std::vector<bool>& keep) const;

  /// Returns a table with only the named columns, in the given order.
  Result<Table> SelectColumns(const std::vector<std::string>& names) const;

  /// Appends all rows of `other`, which must have an identical schema.
  Status Append(const Table& other);

  /// Serializes to CSV (numeric cells via shortest round-trip formatting,
  /// NaN as empty string).
  Status ToCsvFile(const std::string& path) const;

  /// Loads a CSV file, inferring each column as numeric when every non-empty
  /// cell parses as a number, otherwise string.
  static Result<Table> FromCsvFile(const std::string& path);

 private:
  Status CheckLength(size_t n) const;

  std::vector<Column> columns_;
  int64_t num_rows_ = 0;
};

}  // namespace mysawh

#endif  // MYSAWH_DATA_TABLE_H_
