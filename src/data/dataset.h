#ifndef MYSAWH_DATA_DATASET_H_
#define MYSAWH_DATA_DATASET_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "data/table.h"
#include "util/status.h"

namespace mysawh {

/// A dense supervised-learning dataset: a row-major feature matrix (missing
/// values are quiet NaN), one label per row, feature names, and optional
/// integer attribute columns (patient id, clinic code, month, ...) that ride
/// along through slicing so evaluations can stratify without re-joins.
class Dataset {
 public:
  Dataset() = default;

  /// Creates an empty dataset with the given schema.
  static Dataset Create(std::vector<std::string> feature_names);

  /// Builds a dataset from a table: `feature_columns` become the matrix (in
  /// order), `label_column` the label; both must be numeric. `attr_columns`
  /// must be numeric with integral values and become attributes.
  static Result<Dataset> FromTable(const Table& table,
                                   const std::vector<std::string>& feature_columns,
                                   const std::string& label_column,
                                   const std::vector<std::string>& attr_columns = {});

  int64_t num_rows() const { return num_rows_; }
  int64_t num_features() const {
    return static_cast<int64_t>(feature_names_.size());
  }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  /// Index of a feature by name.
  Result<int> FeatureIndex(const std::string& name) const;

  /// Appends one row. `features` must have num_features() entries.
  Status AddRow(const std::vector<double>& features, double label);

  /// Feature value at (row, feature). Bounds are the caller's contract.
  double At(int64_t row, int64_t feature) const {
    return features_[static_cast<size_t>(row * num_features() + feature)];
  }
  /// Mutable feature cell.
  void Set(int64_t row, int64_t feature, double value) {
    features_[static_cast<size_t>(row * num_features() + feature)] = value;
  }
  /// Label of a row.
  double label(int64_t row) const { return labels_[static_cast<size_t>(row)]; }
  void set_label(int64_t row, double value) {
    labels_[static_cast<size_t>(row)] = value;
  }
  const std::vector<double>& labels() const { return labels_; }

  /// Pointer to the start of a row (num_features() contiguous doubles).
  const double* row(int64_t r) const {
    return features_.data() + r * num_features();
  }

  /// Copies a feature column into a fresh vector.
  std::vector<double> FeatureColumn(int64_t feature) const;

  /// Attaches an integer attribute column (length must equal num_rows()).
  Status SetAttribute(const std::string& name, std::vector<int64_t> values);
  bool HasAttribute(const std::string& name) const;
  /// Attribute lookup; fails if absent.
  Result<const std::vector<int64_t>*> Attribute(const std::string& name) const;

  /// Returns a new dataset containing rows at `indices` (in that order),
  /// including attributes. Indices must be in [0, num_rows()).
  Result<Dataset> Take(const std::vector<int64_t>& indices) const;

  /// Appends another dataset with identical feature names and attribute set.
  Status Append(const Dataset& other);

  /// Exports to a Table: one numeric column per feature, a "label" column,
  /// and one numeric column per attribute — the inverse of FromTable, so a
  /// built sample set can be written to CSV and reloaded. Fails when a
  /// feature is already named "label" or clashes with an attribute.
  Result<Table> ToTable() const;

 private:
  std::vector<std::string> feature_names_;
  std::vector<double> features_;  // row-major, num_rows_ * num_features
  std::vector<double> labels_;
  std::map<std::string, std::vector<int64_t>> attributes_;
  int64_t num_rows_ = 0;
};

}  // namespace mysawh

#endif  // MYSAWH_DATA_DATASET_H_
