#include "data/split.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace mysawh {

Result<TrainTestIndices> TrainTestSplit(int64_t n, double test_fraction,
                                        Rng* rng) {
  if (n <= 1) return Status::InvalidArgument("TrainTestSplit needs n > 1");
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    return Status::InvalidArgument("test_fraction must be in (0, 1)");
  }
  std::vector<int64_t> indices(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) indices[static_cast<size_t>(i)] = i;
  rng->Shuffle(&indices);
  int64_t num_test = static_cast<int64_t>(
      std::llround(static_cast<double>(n) * test_fraction));
  num_test = std::max<int64_t>(1, std::min(num_test, n - 1));
  TrainTestIndices out;
  out.test.assign(indices.begin(), indices.begin() + num_test);
  out.train.assign(indices.begin() + num_test, indices.end());
  return out;
}

Result<TrainTestIndices> GroupTrainTestSplit(
    const std::vector<int64_t>& groups, double test_fraction, Rng* rng) {
  if (groups.empty()) {
    return Status::InvalidArgument("GroupTrainTestSplit on empty input");
  }
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    return Status::InvalidArgument("test_fraction must be in (0, 1)");
  }
  std::map<int64_t, std::vector<int64_t>> by_group;
  for (size_t i = 0; i < groups.size(); ++i) {
    by_group[groups[i]].push_back(static_cast<int64_t>(i));
  }
  if (by_group.size() < 2) {
    return Status::InvalidArgument(
        "GroupTrainTestSplit needs at least 2 groups");
  }
  std::vector<int64_t> keys;
  keys.reserve(by_group.size());
  for (const auto& [k, v] : by_group) {
    (void)v;
    keys.push_back(k);
  }
  rng->Shuffle(&keys);
  // Fill the test side group by group until the row quota is reached.
  const auto target = static_cast<int64_t>(std::llround(
      static_cast<double>(groups.size()) * test_fraction));
  TrainTestIndices out;
  int64_t taken = 0;
  size_t i = 0;
  for (; i < keys.size() && (taken == 0 || taken < target); ++i) {
    // Never consume every group into test.
    if (i + 1 == keys.size()) break;
    const auto& rows = by_group[keys[i]];
    out.test.insert(out.test.end(), rows.begin(), rows.end());
    taken += static_cast<int64_t>(rows.size());
  }
  for (; i < keys.size(); ++i) {
    const auto& rows = by_group[keys[i]];
    out.train.insert(out.train.end(), rows.begin(), rows.end());
  }
  std::sort(out.train.begin(), out.train.end());
  std::sort(out.test.begin(), out.test.end());
  return out;
}

Result<TrainTestIndices> StratifiedTrainTestSplit(
    const std::vector<double>& labels, double test_fraction, Rng* rng) {
  if (labels.size() < 2) {
    return Status::InvalidArgument("StratifiedTrainTestSplit needs n > 1");
  }
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    return Status::InvalidArgument("test_fraction must be in (0, 1)");
  }
  std::map<int64_t, std::vector<int64_t>> strata;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (std::isnan(labels[i]) || labels[i] != std::floor(labels[i])) {
      return Status::InvalidArgument(
          "StratifiedTrainTestSplit labels must be integral class ids");
    }
    strata[static_cast<int64_t>(labels[i])].push_back(
        static_cast<int64_t>(i));
  }
  TrainTestIndices out;
  for (auto& [cls, rows] : strata) {
    (void)cls;
    rng->Shuffle(&rows);
    int64_t num_test = static_cast<int64_t>(std::llround(
        static_cast<double>(rows.size()) * test_fraction));
    // Classes with >= 2 members appear on both sides.
    if (rows.size() >= 2) {
      num_test = std::max<int64_t>(1, num_test);
      num_test = std::min<int64_t>(num_test,
                                   static_cast<int64_t>(rows.size()) - 1);
    } else {
      num_test = 0;
    }
    for (size_t i = 0; i < rows.size(); ++i) {
      (static_cast<int64_t>(i) < num_test ? out.test : out.train)
          .push_back(rows[i]);
    }
  }
  std::sort(out.train.begin(), out.train.end());
  std::sort(out.test.begin(), out.test.end());
  if (out.train.empty() || out.test.empty()) {
    return Status::InvalidArgument(
        "StratifiedTrainTestSplit produced an empty side");
  }
  return out;
}

Result<std::vector<Fold>> KFoldSplit(int64_t n, int k, Rng* rng) {
  if (k < 2) return Status::InvalidArgument("KFold needs k >= 2");
  if (n < k) return Status::InvalidArgument("KFold needs n >= k");
  std::vector<int64_t> indices(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) indices[static_cast<size_t>(i)] = i;
  rng->Shuffle(&indices);
  std::vector<Fold> folds(static_cast<size_t>(k));
  for (int64_t i = 0; i < n; ++i) {
    const auto fold = static_cast<size_t>(i % k);
    folds[fold].validation.push_back(indices[static_cast<size_t>(i)]);
  }
  for (int f = 0; f < k; ++f) {
    for (int g = 0; g < k; ++g) {
      if (g == f) continue;
      const auto& v = folds[static_cast<size_t>(g)].validation;
      auto& train = folds[static_cast<size_t>(f)].train;
      train.insert(train.end(), v.begin(), v.end());
    }
  }
  return folds;
}

Result<std::vector<Fold>> StratifiedKFoldSplit(
    const std::vector<double>& labels, int k, Rng* rng) {
  if (k < 2) return Status::InvalidArgument("StratifiedKFold needs k >= 2");
  if (static_cast<int64_t>(labels.size()) < k) {
    return Status::InvalidArgument("StratifiedKFold needs n >= k");
  }
  std::map<int64_t, std::vector<int64_t>> strata;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (std::isnan(labels[i]) || labels[i] != std::floor(labels[i])) {
      return Status::InvalidArgument(
          "StratifiedKFold labels must be integral class ids");
    }
    strata[static_cast<int64_t>(labels[i])].push_back(
        static_cast<int64_t>(i));
  }
  std::vector<Fold> folds(static_cast<size_t>(k));
  // Deal each stratum's rows round-robin across folds at a stratum-specific
  // offset, so small strata do not always land in fold 0.
  int64_t offset = 0;
  for (auto& [cls, rows] : strata) {
    (void)cls;
    rng->Shuffle(&rows);
    for (size_t i = 0; i < rows.size(); ++i) {
      const auto fold =
          static_cast<size_t>((static_cast<int64_t>(i) + offset) % k);
      folds[fold].validation.push_back(rows[i]);
    }
    ++offset;
  }
  for (int f = 0; f < k; ++f) {
    if (folds[static_cast<size_t>(f)].validation.empty()) {
      return Status::InvalidArgument(
          "StratifiedKFold produced an empty fold; reduce k");
    }
  }
  for (int f = 0; f < k; ++f) {
    for (int g = 0; g < k; ++g) {
      if (g == f) continue;
      const auto& v = folds[static_cast<size_t>(g)].validation;
      auto& train = folds[static_cast<size_t>(f)].train;
      train.insert(train.end(), v.begin(), v.end());
    }
  }
  return folds;
}

}  // namespace mysawh
