#ifndef MYSAWH_CORE_ICI_H_
#define MYSAWH_CORE_ICI_H_

#include <string>
#include <vector>

#include "cohort/pro_questions.h"
#include "util/status.h"

namespace mysawh::core {

/// How one manually chosen variable is scored inside the ICI.
enum class IciScoreKind {
  kBinaryAtLeast,  ///< 1 when value >= cutoff (capacity-coded items).
  kBinaryBelow,    ///< 1 when value < cutoff (deficit-coded items, e.g.
                   ///< "stress level scored 1 if lower than 3").
  kGraded,         ///< clamp((value - lo) / (hi - lo)) in [0, 1]
                   ///< (e.g. daily steps).
};

/// One variable of the knowledge-driven index: the clinician's choice of
/// variable, scoring rule, and cutoff.
struct IciVariableSpec {
  std::string variable;  ///< Feature name (PRO question or activity metric).
  IciScoreKind kind = IciScoreKind::kBinaryAtLeast;
  double cutoff = 0.0;   ///< For the binary kinds.
  double lo = 0.0;       ///< For kGraded.
  double hi = 1.0;       ///< For kGraded.
  /// The IC domain this variable represents.
  cohort::IcDomain domain = cohort::IcDomain::kLocomotion;
};

/// The knowledge-driven Intrinsic Capacity Index: a manually selected
/// subset V of the PRO/activity variables, a per-variable score s_i(x), and
/// ICI = sum_i s_i(x_i) / |V| — exactly the paper's Section 4 construction,
/// including its stated bias: the physician's choice of variables, cutoffs
/// and arithmetic is imposed on the data.
class IntrinsicCapacityIndex {
 public:
  /// Builds an index over an explicit variable list.
  explicit IntrinsicCapacityIndex(std::vector<IciVariableSpec> variables);

  /// The reference MySAwH-style definition over the standard question bank:
  /// two questions per IC domain (including the stress question cut at 3,
  /// the paper's example) plus graded daily steps for locomotion.
  static Result<IntrinsicCapacityIndex> StandardMySawh(
      const cohort::ProQuestionBank& bank);

  const std::vector<IciVariableSpec>& variables() const { return variables_; }

  /// Names of the variables the index consumes, in spec order.
  std::vector<std::string> VariableNames() const;

  /// Scores one variable value (NaN input yields NaN).
  double ScoreVariable(const IciVariableSpec& spec, double value) const;

  /// Computes the index over variable values aligned with variables().
  /// Missing (NaN) values are skipped and the sum renormalized by the
  /// number of present variables; returns NaN when everything is missing.
  double Compute(const std::vector<double>& values) const;

 private:
  std::vector<IciVariableSpec> variables_;
};

}  // namespace mysawh::core

#endif  // MYSAWH_CORE_ICI_H_
