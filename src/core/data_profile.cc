#include "core/data_profile.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "gbt/binning.h"
#include "util/telemetry.h"

namespace mysawh::core {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Mean / population stddev / min / max over the present (non-NaN) values
/// of one feature column; mean and stddev are NaN when all values missing.
struct ColumnStats {
  int64_t present = 0;
  double mean = kNaN;
  double stddev = kNaN;
  double min = kNaN;
  double max = kNaN;
};

ColumnStats StatsOf(const Dataset& data, int64_t feature) {
  ColumnStats stats;
  double sum = 0.0;
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    const double v = data.At(r, feature);
    if (std::isnan(v)) continue;
    if (stats.present == 0) {
      stats.min = v;
      stats.max = v;
    } else {
      stats.min = std::min(stats.min, v);
      stats.max = std::max(stats.max, v);
    }
    ++stats.present;
    sum += v;
  }
  if (stats.present == 0) return stats;
  stats.mean = sum / static_cast<double>(stats.present);
  double sq = 0.0;
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    const double v = data.At(r, feature);
    if (std::isnan(v)) continue;
    const double d = v - stats.mean;
    sq += d * d;
  }
  stats.stddev = std::sqrt(sq / static_cast<double>(stats.present));
  return stats;
}

ColumnStats StatsOfLabels(const std::vector<double>& labels) {
  ColumnStats stats;
  double sum = 0.0;
  for (double v : labels) {
    if (std::isnan(v)) continue;
    if (stats.present == 0) {
      stats.min = v;
      stats.max = v;
    } else {
      stats.min = std::min(stats.min, v);
      stats.max = std::max(stats.max, v);
    }
    ++stats.present;
    sum += v;
  }
  if (stats.present == 0) return stats;
  stats.mean = sum / static_cast<double>(stats.present);
  double sq = 0.0;
  for (double v : labels) {
    if (std::isnan(v)) continue;
    const double d = v - stats.mean;
    sq += d * d;
  }
  stats.stddev = std::sqrt(sq / static_cast<double>(stats.present));
  return stats;
}

int64_t CountPositives(const std::vector<double>& labels) {
  int64_t positives = 0;
  for (double v : labels) {
    if (v == 1.0) ++positives;
  }
  return positives;
}

}  // namespace

Result<DataQualityProfile> ProfilePartition(const Dataset& train,
                                            const Dataset& test,
                                            bool classification,
                                            int max_bins) {
  if (train.num_rows() == 0 || test.num_rows() == 0) {
    return Status::InvalidArgument("profile needs non-empty partitions");
  }
  if (train.num_features() != test.num_features()) {
    return Status::InvalidArgument("profile partitions differ in width");
  }

  DataQualityProfile profile;
  profile.train_rows = train.num_rows();
  profile.test_rows = test.num_rows();
  profile.num_features = train.num_features();

  const ColumnStats label_train = StatsOfLabels(train.labels());
  const ColumnStats label_test = StatsOfLabels(test.labels());
  profile.outcome.classification = classification;
  profile.outcome.mean_train = label_train.mean;
  profile.outcome.mean_test = label_test.mean;
  profile.outcome.stddev_train = label_train.stddev;
  profile.outcome.min_train = label_train.min;
  profile.outcome.max_train = label_train.max;
  if (classification) {
    profile.outcome.positives_train = CountPositives(train.labels());
    profile.outcome.positives_test = CountPositives(test.labels());
  }

  // Bin occupancy at the trainer's histogram resolution.
  MYSAWH_ASSIGN_OR_RETURN(gbt::BinnedData binned,
                          gbt::BuildBinned(train, max_bins, nullptr));
  const std::vector<gbt::BinOccupancy> occupancy =
      gbt::ComputeBinOccupancy(binned.bins, binned.matrix);

  double occupancy_sum = 0.0;
  for (int64_t f = 0; f < profile.num_features; ++f) {
    FeatureQuality feature;
    feature.name = train.feature_names()[static_cast<size_t>(f)];
    const ColumnStats in_train = StatsOf(train, f);
    const ColumnStats in_test = StatsOf(test, f);
    feature.missing_train =
        1.0 - static_cast<double>(in_train.present) /
                  static_cast<double>(profile.train_rows);
    feature.missing_test =
        1.0 - static_cast<double>(in_test.present) /
                  static_cast<double>(profile.test_rows);
    feature.mean_train = in_train.mean;
    feature.mean_test = in_test.mean;
    feature.stddev_train = in_train.stddev;
    if (in_train.present > 0 && in_test.present > 0 &&
        in_train.stddev > 0.0) {
      feature.drift = std::abs(in_train.mean - in_test.mean) / in_train.stddev;
    }
    const gbt::BinOccupancy& bins = occupancy[static_cast<size_t>(f)];
    feature.num_bins = bins.num_bins;
    feature.occupied_bins = bins.occupied_bins;
    feature.max_bin_count = bins.max_bin_count;
    if (bins.num_bins > 0) {
      occupancy_sum += static_cast<double>(bins.occupied_bins) /
                       static_cast<double>(bins.num_bins);
    }

    if (profile.max_missing_feature.empty() ||
        feature.missing_train > profile.max_missing_train) {
      profile.max_missing_train = feature.missing_train;
      profile.max_missing_feature = feature.name;
    }
    if (profile.max_drift_feature.empty() ||
        feature.drift > profile.max_drift) {
      profile.max_drift = feature.drift;
      profile.max_drift_feature = feature.name;
    }
    profile.features.push_back(std::move(feature));
  }
  profile.mean_bin_occupancy =
      occupancy_sum / static_cast<double>(profile.num_features);
  return profile;
}

std::string DataQualityJson(const DataQualityProfile& profile) {
  std::ostringstream os;
  os << "{\"train_rows\":" << profile.train_rows
     << ",\"test_rows\":" << profile.test_rows
     << ",\"num_features\":" << profile.num_features << ",\"outcome\":{"
     << "\"classification\":"
     << (profile.outcome.classification ? "true" : "false")
     << ",\"mean_train\":" << TelemetryDouble(profile.outcome.mean_train)
     << ",\"mean_test\":" << TelemetryDouble(profile.outcome.mean_test)
     << ",\"stddev_train\":" << TelemetryDouble(profile.outcome.stddev_train)
     << ",\"min_train\":" << TelemetryDouble(profile.outcome.min_train)
     << ",\"max_train\":" << TelemetryDouble(profile.outcome.max_train);
  if (profile.outcome.classification) {
    os << ",\"positives_train\":" << profile.outcome.positives_train
       << ",\"positives_test\":" << profile.outcome.positives_test;
  }
  os << "},\"max_missing_train\":" << TelemetryDouble(profile.max_missing_train)
     << ",\"max_missing_feature\":\""
     << TelemetryJsonEscape(profile.max_missing_feature) << "\""
     << ",\"max_drift\":" << TelemetryDouble(profile.max_drift)
     << ",\"max_drift_feature\":\""
     << TelemetryJsonEscape(profile.max_drift_feature) << "\""
     << ",\"mean_bin_occupancy\":"
     << TelemetryDouble(profile.mean_bin_occupancy) << ",\"features\":[";
  for (size_t f = 0; f < profile.features.size(); ++f) {
    const FeatureQuality& feature = profile.features[f];
    os << (f == 0 ? "" : ",") << "{\"name\":\""
       << TelemetryJsonEscape(feature.name) << "\""
       << ",\"missing_train\":" << TelemetryDouble(feature.missing_train)
       << ",\"missing_test\":" << TelemetryDouble(feature.missing_test)
       << ",\"mean_train\":" << TelemetryDouble(feature.mean_train)
       << ",\"mean_test\":" << TelemetryDouble(feature.mean_test)
       << ",\"stddev_train\":" << TelemetryDouble(feature.stddev_train)
       << ",\"drift\":" << TelemetryDouble(feature.drift)
       << ",\"num_bins\":" << feature.num_bins
       << ",\"occupied_bins\":" << feature.occupied_bins
       << ",\"max_bin_count\":" << feature.max_bin_count << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace mysawh::core
