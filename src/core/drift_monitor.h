#ifndef MYSAWH_CORE_DRIFT_MONITOR_H_
#define MYSAWH_CORE_DRIFT_MONITOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace mysawh::core {

/// Distribution-drift monitoring for the model-quality observability layer
/// (see docs/observability.md): per-feature PSI and KS statistics against
/// a training-time baseline, plus prediction-distribution drift, evaluated
/// either in one batch (study cells, `evaluate`) or over rolling windows
/// of live predictions (`DriftMonitorRuntime`, hooked into
/// `GbtModel::Predict`). Threshold crossings latch `drift` alert events
/// into the status heartbeat stream — the same latch discipline as the
/// stall watchdog: one event per excursion, re-armed by a clean window.
///
/// The batch statistics are pure functions of (baseline, data,
/// predictions): byte-identical JSON for identical inputs.

/// Alert thresholds. The PSI default follows the conventional 0.2
/// "significant shift" industry cut; KS is the maximum ECDF gap.
struct DriftThresholds {
  double psi = 0.2;
  double ks = 0.15;
};

/// Training-time reference distribution of one feature: equal-frequency
/// bin edges over the present (non-NaN) values plus the expected bin
/// proportions and missingness. Constant or heavily tied features
/// deduplicate to fewer edges; all-missing features keep zero edges.
struct FeatureBaseline {
  std::string name;
  std::vector<double> edges;     ///< Ascending interior edges (bins - 1).
  std::vector<double> expected;  ///< Present-value proportion per bin.
  double missing_expected = 0.0; ///< NaN fraction over all baseline rows.
  int64_t rows = 0;              ///< Baseline rows (present + missing).
};

/// The complete reference: every feature plus the training-set prediction
/// distribution (feature name "__prediction__").
struct DriftBaseline {
  int num_bins = 10;
  std::vector<FeatureBaseline> features;  ///< In dataset feature order.
  FeatureBaseline prediction;
};

/// Builds the baseline from the training partition and the model's
/// predictions on it. `train_preds` may be empty to skip the prediction
/// baseline (its expected vector stays empty). Fails on empty data,
/// num_bins < 2, or a size mismatch.
Result<DriftBaseline> BuildDriftBaseline(const Dataset& train,
                                         const std::vector<double>& train_preds,
                                         int num_bins = 10);

/// PSI + KS of one observed window against one baseline feature. PSI
/// includes the missing bin (proportions over all rows, epsilon-clamped);
/// KS is the maximum |expected ECDF - actual ECDF| over the bin edges,
/// present values only.
struct FeatureDriftStat {
  std::string name;
  double psi = 0.0;
  double ks = 0.0;
  double missing_actual = 0.0;
  int64_t rows = 0;
};

/// One drift evaluation: per-feature stats, the prediction-distribution
/// stat, the argmax summaries, and the threshold crossings.
struct DriftReport {
  int64_t rows = 0;
  std::vector<FeatureDriftStat> features;
  FeatureDriftStat prediction;
  double max_psi = 0.0;
  std::string max_psi_feature;
  double max_ks = 0.0;
  std::string max_ks_feature;
  /// Names of features (or "__prediction__") whose PSI or KS crossed its
  /// threshold, in baseline order. Empty = clean window.
  std::vector<std::string> alerts;
};

/// Evaluates one batch against the baseline. `preds` may be empty to skip
/// prediction drift. Fails on width mismatch or empty data.
Result<DriftReport> EvaluateDrift(const DriftBaseline& baseline,
                                  const Dataset& data,
                                  const std::vector<double>& preds,
                                  const DriftThresholds& thresholds);

/// Baseline artifact (`mysawh-drift-baseline v1`): deterministic JSON with
/// round-trip-exact doubles, written by `train --drift-baseline-out` and
/// loaded by `predict`/`evaluate --drift-baseline`.
std::string DriftBaselineJson(const DriftBaseline& baseline);
Result<DriftBaseline> ParseDriftBaseline(const std::string& json);

/// Deterministic JSON object for the manifest's `drift` block.
std::string DriftReportJson(const DriftReport& report);

/// Options of the streaming runtime below.
struct DriftMonitorOptions {
  int64_t window = 256;  ///< Rows per evaluation window.
  /// Admit one row in `sample_rate` into the window, chosen by the same
  /// content key the audit log samples with (`AuditSampleKey`) — a pure
  /// function of row content, so the admitted population is identical for
  /// any thread count or batch split. 1 observes every row; the CLI
  /// defaults to 16, which keeps the live hook inside its overhead budget
  /// while an unbiased 1-in-16 subsample still moves with the cohort.
  int64_t sample_rate = 1;
  DriftThresholds thresholds;
};

/// True when the global runtime is armed — a single relaxed atomic load,
/// the only cost `GbtModel::Predict` pays on the common (disabled) path.
bool DriftMonitoringEnabled();

/// The live drift monitor: buffers predicted rows into a rolling window
/// and evaluates PSI/KS once per full window. A dirty window (any alert)
/// latches once — incrementing `drift.alerts`, appending a `drift` event
/// to the live Monitor's status stream, and tracing a `drift.alert` span
/// when tracing — and re-arms after a clean window. Observation happens on
/// the caller's thread *after* the parallel prediction loop, so a
/// monitored run's predictions are bit-identical to an unmonitored run's.
class DriftMonitorRuntime {
 public:
  static DriftMonitorRuntime& Global();

  /// Installs the baseline + options and arms the monitor; clears any
  /// buffered window. Fails on an empty baseline or window < 1.
  Status Configure(DriftBaseline baseline, DriftMonitorOptions options);
  /// Disarms and drops the buffered window (the baseline stays installed).
  void Disable();

  /// Buffers one predicted batch (the sampled subset of it when
  /// `sample_rate` > 1); evaluates every full window. No-op when disarmed.
  /// `preds` must have one entry per row of `data`.
  void ObserveBatch(const Dataset& data, const std::vector<double>& preds);

  /// Evaluates any buffered partial window (end of run), then disarms.
  void Flush();

  /// JSON of the most recent window's report, or "" before the first
  /// full window.
  std::string LastReportJson();

  int64_t windows_evaluated() const {
    return windows_.load(std::memory_order_relaxed);
  }
  int64_t alerts_fired() const {
    return alerts_.load(std::memory_order_relaxed);
  }

 private:
  /// One window awaiting evaluation: `count` rows of row-major data (the
  /// baseline width) and their predictions. Points either into the
  /// observed dataset (whole in-batch windows, zero copy) or into the
  /// carry-over buffer.
  struct WindowRef {
    const double* rows = nullptr;
    const double* preds = nullptr;
    int64_t count = 0;
  };

  /// Flattened per-feature bin layout, precomputed at Configure for the
  /// fused counting sweep. Every feature's edges are padded with +inf to
  /// one shared power-of-two width (`pad`): the bin index is then a
  /// branchless binary search of log2(pad) compares, and +inf never
  /// counts below a real value so padding cannot change a bin index.
  struct BinLayout {
    std::vector<double> padded_edges;  ///< width * pad, row-major.
    std::vector<int64_t> nbins;
    std::vector<int64_t> offset;  ///< Feature's slice of the counts matrix.
    int64_t pad = 0;
    int64_t total_bins = 0;
  };

  /// The sampled observation path (`sample_rate` > 1): admits 1-in-rate
  /// rows by content key into the carry-over buffer, evaluating each
  /// window as it fills.
  void ObserveSampledLocked(const Dataset& data,
                            const std::vector<double>& preds, int64_t width);
  /// Evaluates each window with one fused row-major counting sweep
  /// (chunk-parallel over rows), then assembles and latches the reports
  /// in window order.
  void EvaluateWindowsLocked(const std::vector<WindowRef>& windows);
  /// Counters, the latch, and the alert event for one window's report.
  void ProcessReportLocked(DriftReport report);

  std::mutex mutex_;
  DriftBaseline baseline_;
  BinLayout layout_;
  DriftMonitorOptions options_;
  std::vector<double> window_rows_;   ///< Row-major, baseline width.
  std::vector<double> window_preds_;
  int64_t buffered_ = 0;
  bool alert_latched_ = false;
  /// Most recent window's report; JSON is rendered on demand by
  /// LastReportJson() so the window path never pays for serialization.
  DriftReport last_report_;
  bool has_report_ = false;
  std::atomic<int64_t> windows_{0};
  std::atomic<int64_t> alerts_{0};
};

}  // namespace mysawh::core

#endif  // MYSAWH_CORE_DRIFT_MONITOR_H_
