#include "core/ici.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mysawh::core {

using cohort::IcDomain;
using cohort::ProQuestionBank;

IntrinsicCapacityIndex::IntrinsicCapacityIndex(
    std::vector<IciVariableSpec> variables)
    : variables_(std::move(variables)) {}

Result<IntrinsicCapacityIndex> IntrinsicCapacityIndex::StandardMySawh(
    const ProQuestionBank& bank) {
  std::vector<IciVariableSpec> specs;
  for (int d = 0; d < cohort::kNumDomains; ++d) {
    const auto domain = static_cast<IcDomain>(d);
    const std::vector<int> indices = bank.DomainQuestions(domain);
    if (indices.size() < 2) {
      return Status::InvalidArgument(
          "ICI needs at least two questions per domain");
    }
    // The clinician picks the first two items of each domain.
    for (int pick = 0; pick < 2; ++pick) {
      const auto& q = bank.question(indices[static_cast<size_t>(pick)]);
      IciVariableSpec spec;
      spec.variable = q.name;
      spec.domain = domain;
      if (q.name == cohort::kStressQuestionName) {
        // The paper's worked example: stress (1..10) scores 1 when the
        // value is lower than 3.
        spec.kind = IciScoreKind::kBinaryBelow;
        spec.cutoff = 3.0;
      } else if (q.reversed) {
        spec.kind = IciScoreKind::kBinaryBelow;
        spec.cutoff = std::ceil((1.0 + q.levels) / 2.0);
      } else {
        spec.kind = IciScoreKind::kBinaryAtLeast;
        spec.cutoff = std::ceil((1.0 + q.levels) / 2.0);
      }
      specs.push_back(std::move(spec));
    }
  }
  // Graded daily-steps variable for locomotion ("number of steps per day"
  // is the paper's example of a [0, 1]-range score).
  IciVariableSpec steps;
  steps.variable = "act_steps";
  steps.kind = IciScoreKind::kGraded;
  steps.lo = 0.0;
  steps.hi = 10000.0;
  steps.domain = IcDomain::kLocomotion;
  specs.push_back(std::move(steps));
  return IntrinsicCapacityIndex(std::move(specs));
}

std::vector<std::string> IntrinsicCapacityIndex::VariableNames() const {
  std::vector<std::string> names;
  names.reserve(variables_.size());
  for (const auto& spec : variables_) names.push_back(spec.variable);
  return names;
}

double IntrinsicCapacityIndex::ScoreVariable(const IciVariableSpec& spec,
                                             double value) const {
  if (std::isnan(value)) return std::numeric_limits<double>::quiet_NaN();
  switch (spec.kind) {
    case IciScoreKind::kBinaryAtLeast:
      return value >= spec.cutoff ? 1.0 : 0.0;
    case IciScoreKind::kBinaryBelow:
      return value < spec.cutoff ? 1.0 : 0.0;
    case IciScoreKind::kGraded: {
      if (spec.hi <= spec.lo) return 0.0;
      return std::min(1.0,
                      std::max(0.0, (value - spec.lo) / (spec.hi - spec.lo)));
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

double IntrinsicCapacityIndex::Compute(
    const std::vector<double>& values) const {
  double sum = 0.0;
  int64_t present = 0;
  const size_t n = std::min(values.size(), variables_.size());
  for (size_t i = 0; i < n; ++i) {
    const double score = ScoreVariable(variables_[i], values[i]);
    if (std::isnan(score)) continue;
    sum += score;
    ++present;
  }
  if (present == 0) return std::numeric_limits<double>::quiet_NaN();
  return sum / static_cast<double>(present);
}

}  // namespace mysawh::core
