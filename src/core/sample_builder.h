#ifndef MYSAWH_CORE_SAMPLE_BUILDER_H_
#define MYSAWH_CORE_SAMPLE_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cohort/cohort.h"
#include "core/ici.h"
#include "core/outcomes.h"
#include "data/dataset.h"
#include "series/interpolation.h"
#include "series/time_series.h"
#include "util/status.h"

namespace mysawh::core {

/// Options of the sample-set construction, mirroring the paper's Section 3
/// "Observational data and feature space" plus its quality-assurance step.
struct SampleBuildOptions {
  /// Gap runs up to this length are imputed; longer gaps are left missing.
  /// The paper experimentally settled on 5.
  int max_interpolation_gap = 5;
  /// How bounded gaps are filled (the paper interpolates linearly).
  ImputationMethod imputation = ImputationMethod::kLinear;
  /// A monthly sample is dropped when more than this fraction of its
  /// features is still missing after interpolation and aggregation. The
  /// default (~2 of 59 features) retains roughly the same share of the
  /// 4,176 candidate records as the paper's final 2,250-sample training
  /// set.
  double max_missing_fraction = 0.04;
};

/// Names of the three activity-tracker features.
inline constexpr const char* kStepsFeature = "act_steps";
inline constexpr const char* kCaloriesFeature = "act_calories";
inline constexpr const char* kSleepFeature = "act_sleep";
/// Name of the Frailty Index baseline feature in the *_fi sample sets.
inline constexpr const char* kFiFeature = "fi_baseline";

/// The four aligned sample sets of one outcome o: the paper's Sample_o
/// (DD), Sample^FI_o (DD + FI), Sample^ICI_o (KD) and Sample^ICI,FI_o
/// (KD + FI). All four contain the same retained rows in the same order,
/// with attributes "patient", "clinic", "window", "month" attached, so DD
/// and KD are evaluated on identical samples.
struct SampleSets {
  Outcome outcome = Outcome::kQol;
  Dataset dd;     ///< 56 PRO + 3 activity features.
  Dataset dd_fi;  ///< dd + FI at the window-start visit.
  Dataset kd;     ///< single ICI feature.
  Dataset kd_fi;  ///< ICI + FI.

  int64_t total_candidates = 0;  ///< Monthly samples before QA filtering.
  int64_t retained = 0;          ///< Rows surviving the QA filter.
  GapStats gap_stats_raw;        ///< PRO gap statistics before interpolation.
  GapStats gap_stats_after;      ///< ... after bounded interpolation.
};

/// Builds the paper's sample sets from a generated cohort:
///  1. bounded linear interpolation of every weekly PRO series,
///  2. monthly aggregation (mean over the month's answered prompts; mean of
///     the month's worn-device days for the activity traces),
///  3. one candidate sample per patient per non-visit month (8 per window),
///     labelled with the end-of-window outcome,
///  4. the QA drop rule for samples that remain too incomplete,
///  5. ICI computation per retained sample for the KD sets, and the FI of
///     the window-start visit for the *_fi sets.
class SampleSetBuilder {
 public:
  /// `cohort` must outlive the builder. Uses the standard MySAwH ICI.
  static Result<SampleSetBuilder> Create(const cohort::Cohort* cohort,
                                         SampleBuildOptions options);

  /// Builds all four aligned sample sets for one outcome.
  Result<SampleSets> Build(Outcome outcome) const;

  /// DD feature names (56 PRO + 3 activity).
  const std::vector<std::string>& dd_feature_names() const {
    return dd_feature_names_;
  }
  const IntrinsicCapacityIndex& ici() const { return ici_; }
  const SampleBuildOptions& options() const { return options_; }

 private:
  SampleSetBuilder(const cohort::Cohort* cohort, SampleBuildOptions options,
                   IntrinsicCapacityIndex ici);

  const cohort::Cohort* cohort_;
  SampleBuildOptions options_;
  IntrinsicCapacityIndex ici_;
  std::vector<std::string> dd_feature_names_;
  std::vector<int> ici_feature_indices_;  ///< ICI variables -> DD columns.
};

}  // namespace mysawh::core

#endif  // MYSAWH_CORE_SAMPLE_BUILDER_H_
