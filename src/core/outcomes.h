#ifndef MYSAWH_CORE_OUTCOMES_H_
#define MYSAWH_CORE_OUTCOMES_H_

#include <string>

#include "cohort/cohort.h"
#include "util/status.h"

namespace mysawh::core {

/// The three wellness outcomes the paper predicts.
enum class Outcome {
  kQol,    ///< Quality of Life, regression on [0, 1].
  kSppb,   ///< Short Physical Performance Battery, regression on 0..12.
  kFalls,  ///< Fell during the window, binary classification.
};

/// "QoL" / "SPPB" / "Falls".
const char* OutcomeName(Outcome outcome);
/// Parses an outcome name (case-sensitive).
Result<Outcome> ParseOutcome(const std::string& name);
/// True for Falls.
bool IsClassification(Outcome outcome);

/// Extracts the label for one outcome from a visit's assessments.
double OutcomeLabel(const cohort::VisitOutcomes& visit, Outcome outcome);

}  // namespace mysawh::core

#endif  // MYSAWH_CORE_OUTCOMES_H_
