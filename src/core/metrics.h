#ifndef MYSAWH_CORE_METRICS_H_
#define MYSAWH_CORE_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace mysawh::core {

/// Regression error metrics. 1-MAPE is what the paper's Fig 4 / Table 1
/// report for QoL and SPPB.
struct RegressionMetrics {
  double mae = 0.0;
  double rmse = 0.0;
  /// Mean absolute percentage error over samples with a nonzero label
  /// (zero-label samples are excluded and counted in `mape_skipped`).
  double mape = 0.0;
  double one_minus_mape = 0.0;
  int64_t n = 0;
  int64_t mape_skipped = 0;

  std::string ToString() const;
};

/// Computes regression metrics; inputs must be equal-length and non-empty.
Result<RegressionMetrics> ComputeRegressionMetrics(
    const std::vector<double>& labels, const std::vector<double>& predictions);

/// Binary classification effectiveness at a probability threshold, with
/// per-class precision/recall/F1 exactly as the paper's Fig 4 reports for
/// Falls (True = fell, the minority class).
struct ClassificationMetrics {
  int64_t tp = 0, fp = 0, tn = 0, fn = 0;
  double accuracy = 0.0;
  double precision_true = 0.0;
  double precision_false = 0.0;
  double recall_true = 0.0;
  double recall_false = 0.0;
  double f1_true = 0.0;
  double f1_false = 0.0;

  std::string ToString() const;
};

/// Computes classification metrics from probabilities; labels must be in
/// {0, 1}. Empty-denominator ratios are reported as 0.
Result<ClassificationMetrics> ComputeClassificationMetrics(
    const std::vector<double>& labels, const std::vector<double>& probabilities,
    double threshold = 0.5);

/// Mean squared error of predicted probabilities against binary outcomes
/// (lower is better; 0.25 = uninformative constant 0.5).
Result<double> BrierScore(const std::vector<double>& labels,
                          const std::vector<double>& probabilities);

/// One bin of a reliability (calibration) diagram.
struct CalibrationBin {
  double mean_predicted = 0.0;  ///< Mean predicted probability in the bin.
  double observed_rate = 0.0;   ///< Empirical positive rate in the bin.
  int64_t count = 0;
};

/// Bins predictions into `num_bins` equal-width probability intervals and
/// reports mean prediction vs observed rate per non-empty bin — a
/// well-calibrated model has the two near-equal. Labels in {0, 1};
/// probabilities in [0, 1].
Result<std::vector<CalibrationBin>> ComputeCalibrationBins(
    const std::vector<double>& labels,
    const std::vector<double>& probabilities, int num_bins = 10);

/// Area under the ROC curve via the rank-sum (Mann–Whitney) statistic with
/// average ranks for tied scores. Labels must be in {0, 1} with both
/// classes present. 0.5 = chance, 1.0 = perfect ranking.
Result<double> RocAuc(const std::vector<double>& labels,
                      const std::vector<double>& scores);

/// Per-patient mean absolute error: groups rows by `patients` and averages
/// |label - prediction| within each group. Returns (patient id, MAE) pairs
/// ordered by patient id. Used for the paper's Fig 5 box plots.
Result<std::vector<std::pair<int64_t, double>>> PerGroupMae(
    const std::vector<double>& labels, const std::vector<double>& predictions,
    const std::vector<int64_t>& patients);

}  // namespace mysawh::core

#endif  // MYSAWH_CORE_METRICS_H_
