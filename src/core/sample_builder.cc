#include "core/sample_builder.h"

#include <cmath>
#include <limits>

#include "core/fi.h"
#include "series/aggregation.h"
#include "series/interpolation.h"

namespace mysawh::core {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}  // namespace

SampleSetBuilder::SampleSetBuilder(const cohort::Cohort* cohort,
                                   SampleBuildOptions options,
                                   IntrinsicCapacityIndex ici)
    : cohort_(cohort), options_(options), ici_(std::move(ici)) {}

Result<SampleSetBuilder> SampleSetBuilder::Create(const cohort::Cohort* cohort,
                                                  SampleBuildOptions options) {
  if (cohort == nullptr) {
    return Status::InvalidArgument("SampleSetBuilder: null cohort");
  }
  if (options.max_interpolation_gap < 0) {
    return Status::InvalidArgument("max_interpolation_gap must be >= 0");
  }
  if (options.max_missing_fraction < 0.0 ||
      options.max_missing_fraction > 1.0) {
    return Status::InvalidArgument("max_missing_fraction must be in [0,1]");
  }
  MYSAWH_ASSIGN_OR_RETURN(
      IntrinsicCapacityIndex ici,
      IntrinsicCapacityIndex::StandardMySawh(cohort->questions));
  SampleSetBuilder builder(cohort, options, std::move(ici));
  builder.dd_feature_names_ = cohort->questions.Names();
  builder.dd_feature_names_.push_back(kStepsFeature);
  builder.dd_feature_names_.push_back(kCaloriesFeature);
  builder.dd_feature_names_.push_back(kSleepFeature);
  // Map the ICI's variables onto DD feature columns once.
  for (const auto& name : builder.ici_.VariableNames()) {
    int found = -1;
    for (size_t i = 0; i < builder.dd_feature_names_.size(); ++i) {
      if (builder.dd_feature_names_[i] == name) {
        found = static_cast<int>(i);
        break;
      }
    }
    if (found < 0) {
      return Status::InvalidArgument("ICI variable not in feature space: " +
                                     name);
    }
    builder.ici_feature_indices_.push_back(found);
  }
  return builder;
}

Result<SampleSets> SampleSetBuilder::Build(Outcome outcome) const {
  const auto& config = cohort_->config;
  const int num_questions = static_cast<int>(cohort_->questions.size());
  const int num_features = num_questions + 3;

  SampleSets sets;
  sets.outcome = outcome;
  sets.dd = Dataset::Create(dd_feature_names_);
  auto fi_names = dd_feature_names_;
  fi_names.push_back(kFiFeature);
  sets.dd_fi = Dataset::Create(fi_names);
  sets.kd = Dataset::Create({"ici"});
  sets.kd_fi = Dataset::Create({"ici", kFiFeature});

  std::vector<int64_t> attr_patient, attr_clinic, attr_window, attr_month;

  for (const auto& patient : cohort_->patients) {
    // 1. Interpolate weekly PRO series (bounded) and track gap statistics.
    std::vector<TimeSeries> weekly = patient.pro_weekly;
    for (auto& series : weekly) {
      sets.gap_stats_raw.Merge(ComputeGapStats(series));
      MYSAWH_RETURN_NOT_OK(
          ImputeMaxGap(&series, options_.max_interpolation_gap,
                       options_.imputation)
              .status());
      sets.gap_stats_after.Merge(ComputeGapStats(series));
    }
    // 2. Monthly aggregation.
    std::vector<TimeSeries> monthly_pro;
    monthly_pro.reserve(weekly.size());
    for (const auto& series : weekly) {
      MYSAWH_ASSIGN_OR_RETURN(
          TimeSeries monthly,
          AggregateByPeriod(series, config.weeks_per_month,
                            AggregateOp::kMean));
      monthly_pro.push_back(std::move(monthly));
    }
    MYSAWH_ASSIGN_OR_RETURN(
        TimeSeries monthly_steps,
        AggregateByPeriod(patient.steps_daily, config.days_per_month,
                          AggregateOp::kMean));
    MYSAWH_ASSIGN_OR_RETURN(
        TimeSeries monthly_calories,
        AggregateByPeriod(patient.calories_daily, config.days_per_month,
                          AggregateOp::kMean));
    MYSAWH_ASSIGN_OR_RETURN(
        TimeSeries monthly_sleep,
        AggregateByPeriod(patient.sleep_daily, config.days_per_month,
                          AggregateOp::kMean));
    MYSAWH_ASSIGN_OR_RETURN(std::vector<double> fi_trajectory,
                            PatientFrailtyTrajectory(patient));

    // 3.-5. One candidate sample per non-visit month of each window.
    for (int w = 0; w < config.NumWindows(); ++w) {
      const double label =
          OutcomeLabel(patient.outcomes[static_cast<size_t>(w)], outcome);
      const double fi = fi_trajectory[static_cast<size_t>(w)];
      for (int i = 1; i <= 8; ++i) {
        const int month = w * 9 + i;
        if (month >= config.num_months) break;
        ++sets.total_candidates;
        std::vector<double> features(static_cast<size_t>(num_features), kNaN);
        int64_t missing = 0;
        for (int q = 0; q < num_questions; ++q) {
          const double v = monthly_pro[static_cast<size_t>(q)].at(month);
          features[static_cast<size_t>(q)] = v;
          missing += std::isnan(v) ? 1 : 0;
        }
        features[static_cast<size_t>(num_questions)] =
            monthly_steps.at(month);
        features[static_cast<size_t>(num_questions + 1)] =
            monthly_calories.at(month);
        features[static_cast<size_t>(num_questions + 2)] =
            monthly_sleep.at(month);
        for (int a = 0; a < 3; ++a) {
          missing +=
              std::isnan(features[static_cast<size_t>(num_questions + a)])
                  ? 1
                  : 0;
        }
        const double missing_fraction =
            static_cast<double>(missing) / static_cast<double>(num_features);
        if (missing_fraction > options_.max_missing_fraction) continue;

        // ICI over the same monthly values.
        std::vector<double> ici_inputs;
        ici_inputs.reserve(ici_feature_indices_.size());
        for (int idx : ici_feature_indices_) {
          ici_inputs.push_back(features[static_cast<size_t>(idx)]);
        }
        const double ici_value = ici_.Compute(ici_inputs);
        if (std::isnan(ici_value)) continue;  // KD has nothing to score

        MYSAWH_RETURN_NOT_OK(sets.dd.AddRow(features, label));
        std::vector<double> features_fi = features;
        features_fi.push_back(fi);
        MYSAWH_RETURN_NOT_OK(sets.dd_fi.AddRow(features_fi, label));
        MYSAWH_RETURN_NOT_OK(sets.kd.AddRow({ici_value}, label));
        MYSAWH_RETURN_NOT_OK(sets.kd_fi.AddRow({ici_value, fi}, label));
        attr_patient.push_back(patient.patient_id);
        attr_clinic.push_back(patient.clinic);
        attr_window.push_back(w);
        attr_month.push_back(month);
        ++sets.retained;
      }
    }
  }

  for (Dataset* ds : {&sets.dd, &sets.dd_fi, &sets.kd, &sets.kd_fi}) {
    MYSAWH_RETURN_NOT_OK(ds->SetAttribute("patient", attr_patient));
    MYSAWH_RETURN_NOT_OK(ds->SetAttribute("clinic", attr_clinic));
    MYSAWH_RETURN_NOT_OK(ds->SetAttribute("window", attr_window));
    MYSAWH_RETURN_NOT_OK(ds->SetAttribute("month", attr_month));
  }
  return sets;
}

}  // namespace mysawh::core
