#ifndef MYSAWH_CORE_EVALUATION_H_
#define MYSAWH_CORE_EVALUATION_H_

#include <memory>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/outcomes.h"
#include "data/dataset.h"
#include "gam/gam_model.h"
#include "gbt/gbt_model.h"
#include "model/model.h"
#include "util/status.h"

namespace mysawh::core {

/// Which learning framework a result belongs to (Fig 3's two sides).
enum class Approach {
  kDataDriven,       ///< GBT on the raw PRO + activity features.
  kKnowledgeDriven,  ///< GBT on the manually built ICI (+ FI).
};
/// "DD" / "KD".
const char* ApproachName(Approach approach);

/// Which model family an experiment cell trains. The paper's pipeline uses
/// gradient boosting; the linear and GAM families run the same protocol for
/// baseline comparisons (cf. `bench/ablation_model_families`).
enum class ModelFamily {
  kGbt,     ///< Gradient-boosted trees (the paper's choice).
  kLinear,  ///< Ridge regression / logistic regression by outcome type.
  kGam,     ///< Cyclic-boosted generalized additive model.
};

/// "gbt" / "linear" / "gam".
const char* ModelFamilyName(ModelFamily family);
/// Inverse of ModelFamilyName; InvalidArgument on unknown names.
Result<ModelFamily> ParseModelFamily(const std::string& name);

/// Hyperparameters for one experiment cell, covering every model family.
/// Only the block matching `family` is consulted at training time.
struct ModelFamilyConfig {
  ModelFamily family = ModelFamily::kGbt;
  gbt::GbtParams gbt;
  gam::GamParams gam;
  double linear_lambda = 1.0;  ///< Ridge strength for the linear family.
};

/// Train/test and cross-validation protocol, mirroring the paper: standard
/// KFold CV on 80% of the samples and a test phase on the remaining 20%.
struct EvalProtocol {
  double test_fraction = 0.2;
  int cv_folds = 5;
  uint64_t seed = 1234;
  /// Classification probability cutoff.
  double decision_threshold = 0.5;
};

/// Everything produced by one experiment cell (one outcome x approach x
/// FI-usage): test metrics, CV-mean metrics, the final model, and the
/// train/test partitions (retained so SHAP analyses can run on exactly the
/// evaluation data).
///
/// Move-only: the trained model is held polymorphically.
struct ExperimentResult {
  Outcome outcome = Outcome::kQol;
  Approach approach = Approach::kDataDriven;
  bool with_fi = false;

  bool is_classification = false;
  RegressionMetrics test_regression;      ///< Valid when regression.
  ClassificationMetrics test_classification;  ///< Valid when classification.
  RegressionMetrics cv_regression;        ///< Fold means.
  ClassificationMetrics cv_classification;

  std::unique_ptr<model::Model> model;  ///< Trained on the 80% train side.
  Dataset train;
  Dataset test;

  /// The trained model as a GBT, or nullptr when another family was used.
  /// TreeSHAP and the staged-prediction analyses are tree-only and need the
  /// concrete type.
  const gbt::GbtModel* gbt_model() const {
    return dynamic_cast<const gbt::GbtModel*>(model.get());
  }

  /// The headline scalar of Fig 4: 1-MAPE for regression, accuracy for
  /// classification.
  double HeadlineMetric() const;
};

/// Default booster hyperparameters for one outcome/approach cell. KD models
/// see only 1-2 features and use shallower trees; Falls uses the logistic
/// objective with a class-imbalance weight.
gbt::GbtParams DefaultGbtParams(Outcome outcome, Approach approach);

/// Default hyperparameters for any family on one outcome/approach cell.
/// The GBT block always matches DefaultGbtParams so family == kGbt
/// reproduces the paper pipeline exactly.
ModelFamilyConfig DefaultModelConfig(Outcome outcome, Approach approach,
                                     ModelFamily family = ModelFamily::kGbt);

/// Trains one model of the configured family on `train`. The linear family
/// resolves to logistic regression for classification outcomes.
/// `validation`, when non-null, is tracked per boosting round by the GBT
/// family (for telemetry learning curves; other families ignore it) — it
/// never changes the trained model unless early stopping is configured.
Result<std::unique_ptr<model::Model>> TrainModel(
    const Dataset& train, Outcome outcome, const ModelFamilyConfig& config,
    const Dataset* validation = nullptr);

/// Runs one experiment cell on a sample set (pass SampleSets::dd, dd_fi,
/// kd or kd_fi; `approach`/`with_fi` are recorded as metadata): splits
/// 80/20 (stratified for Falls), K-fold cross-validates on the train side,
/// trains the final model on all train rows, and evaluates on the test
/// side.
Result<ExperimentResult> RunExperiment(const Dataset& samples, Outcome outcome,
                                       Approach approach, bool with_fi,
                                       const ModelFamilyConfig& config,
                                       const EvalProtocol& protocol);

/// GBT-only overload, kept for the paper pipeline's call sites.
Result<ExperimentResult> RunExperiment(const Dataset& samples, Outcome outcome,
                                       Approach approach, bool with_fi,
                                       const gbt::GbtParams& params,
                                       const EvalProtocol& protocol);

/// Convenience overload using DefaultGbtParams.
Result<ExperimentResult> RunExperiment(const Dataset& samples, Outcome outcome,
                                       Approach approach, bool with_fi,
                                       const EvalProtocol& protocol);

}  // namespace mysawh::core

#endif  // MYSAWH_CORE_EVALUATION_H_
