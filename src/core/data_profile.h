#ifndef MYSAWH_CORE_DATA_PROFILE_H_
#define MYSAWH_CORE_DATA_PROFILE_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace mysawh::core {

/// Data-quality profile of one study cell's train/test partition: the
/// missingness, outcome balance, histogram-bin occupancy, and train/test
/// drift diagnostics that the paper family's learning-curve analyses lean
/// on (class imbalance dominates the Falls task; missingness dominates the
/// PRO features). Attached to every cell of the run manifest
/// (`data_quality` block, see docs/observability.md) — never to
/// REPORT.md, so reports stay bit-identical with or without profiling.
///
/// Profiles are pure functions of the datasets: byte-identical JSON for
/// identical partitions, golden-testable (tests/data_profile_test.cc).

/// Per-feature quality diagnostics.
struct FeatureQuality {
  std::string name;
  double missing_train = 0.0;  ///< Fraction of NaN cells in train.
  double missing_test = 0.0;   ///< ... in test.
  double mean_train = 0.0;     ///< Mean over present train cells (NaN if none).
  double mean_test = 0.0;      ///< ... over present test cells.
  double stddev_train = 0.0;   ///< Population stddev over present train cells.
  /// Standardized mean difference |mean_train - mean_test| / stddev_train
  /// (0 when the train side is constant or either side is all-missing).
  double drift = 0.0;
  int num_bins = 0;            ///< Histogram bins from BuildBinned on train.
  int occupied_bins = 0;       ///< Bins holding at least one train row.
  int64_t max_bin_count = 0;   ///< Train rows in the fullest bin.
};

/// Outcome distribution of both partitions. For classification outcomes
/// the means are positive rates and the positive counts are meaningful;
/// for regression the min/max/stddev describe the label spread.
struct OutcomeQuality {
  bool classification = false;
  double mean_train = 0.0;
  double mean_test = 0.0;
  double stddev_train = 0.0;
  double min_train = 0.0;
  double max_train = 0.0;
  int64_t positives_train = 0;  ///< label == 1 count (classification).
  int64_t positives_test = 0;
};

/// The complete per-cell profile.
struct DataQualityProfile {
  int64_t train_rows = 0;
  int64_t test_rows = 0;
  int64_t num_features = 0;
  OutcomeQuality outcome;
  std::vector<FeatureQuality> features;  ///< In dataset feature order.

  // Aggregates for dashboards that do not want 59 feature rows.
  double max_missing_train = 0.0;
  std::string max_missing_feature;
  double max_drift = 0.0;
  std::string max_drift_feature;
  double mean_bin_occupancy = 0.0;  ///< Mean occupied/num_bins over features.
};

/// Profiles one train/test partition. `max_bins` matches the trainer's
/// histogram resolution so the occupancy stats describe the bins training
/// actually used. Fails only on malformed input (empty partitions,
/// mismatched widths).
Result<DataQualityProfile> ProfilePartition(const Dataset& train,
                                            const Dataset& test,
                                            bool classification,
                                            int max_bins = 64);

/// Deterministic JSON object (no trailing newline) for the manifest's
/// `data_quality` block. Doubles use round-trip-exact shortest form; NaN
/// renders as null.
std::string DataQualityJson(const DataQualityProfile& profile);

}  // namespace mysawh::core

#endif  // MYSAWH_CORE_DATA_PROFILE_H_
