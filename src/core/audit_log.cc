#include "core/audit_log.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>

#include "util/file_io.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace mysawh::core {
namespace {

std::atomic<bool> g_audit_enabled{false};

constexpr char kAuditSchema[] = "mysawh-audit v1";

std::string HexU64(uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

Result<uint64_t> ParseHexU64(const std::string& text) {
  if (text.empty() || text.size() > 16) {
    return Status::DataLoss("audit: malformed fingerprint '" + text + "'");
  }
  uint64_t value = 0;
  for (const char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return Status::DataLoss("audit: malformed fingerprint '" + text + "'");
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  return value;
}

/// JSON serialization is deferred to SerializePayload(): the record path
/// runs inside `Predict`, where a shortest-round-trip double rendering
/// per feature would dominate the prediction itself.
std::string RecordJson(const AuditRecord& record) {
  std::string out = "{\"type\":\"";
  out += record.type;
  out += "\",\"fp\":\"";
  out += HexU64(record.row_fp);
  out += "\",\"model\":\"";
  out += HexU64(record.model_fp);
  out += "\",\"features\":[";
  for (size_t f = 0; f < record.features.size(); ++f) {
    if (f > 0) out += ',';
    out += TelemetryDouble(record.features[f]);
  }
  out += ']';
  if (record.type == "predict") {
    out += ",\"prediction\":";
    out += TelemetryDouble(record.prediction);
  } else {
    out += ",\"shap\":[";
    for (size_t i = 0; i < record.shap.size(); ++i) {
      if (i > 0) out += ',';
      out += "{\"i\":";
      out += std::to_string(record.shap[i].index);
      out += ",\"v\":";
      out += TelemetryDouble(record.shap[i].value);
      out += '}';
    }
    out += ']';
  }
  out += '}';
  return out;
}

}  // namespace

uint64_t HashRow(const double* row, int64_t num_features) {
  // FNV-1a over the doubles as 8-byte words, in four interleaved lanes so
  // the multiply latency chains overlap — this runs for EVERY predicted
  // row while the log is armed, and the serial chain of a single lane
  // would cost more than the budgeted audit overhead on wide data. The
  // lanes are folded in a fixed order, so the result is a pure function
  // of the canonicalized bytes.
  constexpr uint64_t kBasis = 14695981039346656037ull;
  constexpr uint64_t kPrime = 1099511628211ull;
  uint64_t lanes[4] = {kBasis, kBasis ^ 0x9e3779b97f4a7c15ull,
                       kBasis ^ 0xc2b2ae3d27d4eb4full,
                       kBasis ^ 0x165667b19e3779f9ull};
  int64_t f = 0;
  for (; f + 4 <= num_features; f += 4) {
    lanes[0] = (lanes[0] ^ CanonicalFeatureBits(row[f + 0])) * kPrime;
    lanes[1] = (lanes[1] ^ CanonicalFeatureBits(row[f + 1])) * kPrime;
    lanes[2] = (lanes[2] ^ CanonicalFeatureBits(row[f + 2])) * kPrime;
    lanes[3] = (lanes[3] ^ CanonicalFeatureBits(row[f + 3])) * kPrime;
  }
  for (; f < num_features; ++f) {
    lanes[f & 3] = (lanes[f & 3] ^ CanonicalFeatureBits(row[f])) * kPrime;
  }
  uint64_t hash = kBasis;
  for (const uint64_t lane : lanes) hash = (hash ^ lane) * kPrime;
  return hash;
}

uint64_t HashBytes(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = 14695981039346656037ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

bool AuditEnabled() {
  return g_audit_enabled.load(std::memory_order_relaxed);
}

AuditLog& AuditLog::Global() {
  static AuditLog* const log = new AuditLog();
  return *log;
}

Status AuditLog::Configure(AuditOptions options) {
  if (options.sample_rate < 1) {
    return Status::InvalidArgument("audit: sample rate must be >= 1");
  }
  if (options.top_k < 1) {
    return Status::InvalidArgument("audit: top-k must be >= 1");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  options_ = options;
  records_.clear();
  g_audit_enabled.store(true, std::memory_order_relaxed);
  return Status::Ok();
}

void AuditLog::Disable() {
  g_audit_enabled.store(false, std::memory_order_relaxed);
}

void AuditLog::RecordPredictBatch(uint64_t model_fp, const Dataset& data,
                                  const std::vector<double>& predictions) {
  if (!AuditEnabled()) return;
  if (static_cast<int64_t>(predictions.size()) != data.num_rows()) return;
  int64_t sample_rate;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sample_rate = options_.sample_rate;
  }
  const int64_t width = data.num_features();
  // Chunked so the sampling sweep parallelizes on multicore machines yet
  // stays bit-exact for any worker count: chunk boundaries depend only on
  // the row count and chunks merge in index order. On a single core the
  // shared pool runs inline with no dispatch cost. The full-row fingerprint
  // is only computed for rows that pass the prefix-key sampling test.
  constexpr int64_t kChunk = 1024;
  const int64_t num_chunks = (data.num_rows() + kChunk - 1) / kChunk;
  std::vector<std::vector<AuditRecord>> chunks(static_cast<size_t>(num_chunks));
  DefaultPool().ParallelForChunks(
      data.num_rows(), kChunk, [&](int64_t chunk, int64_t begin, int64_t end) {
        std::vector<AuditRecord>& out = chunks[static_cast<size_t>(chunk)];
        for (int64_t r = begin; r < end; ++r) {
          const double* row = data.row(r);
          if (sample_rate > 1 &&
              !AuditSampled(AuditSampleKey(row, width), sample_rate)) {
            continue;
          }
          AuditRecord record;
          record.type = "predict";
          record.row_fp = HashRow(row, width);
          record.model_fp = model_fp;
          record.features.assign(row, row + width);
          record.prediction = predictions[static_cast<size_t>(r)];
          out.push_back(std::move(record));
        }
      });
  int64_t total = 0;
  for (const std::vector<AuditRecord>& chunk : chunks) {
    total += static_cast<int64_t>(chunk.size());
  }
  if (total == 0) return;
  static Counter* const sampled_counter =
      MetricsRegistry::Global().GetCounter("audit.records");
  sampled_counter->Increment(total);
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::vector<AuditRecord>& chunk : chunks) {
    for (AuditRecord& record : chunk) {
      records_.push_back(std::move(record));
    }
  }
}

void AuditLog::RecordShapBatch(
    uint64_t model_fp, const Dataset& data,
    const std::vector<std::vector<double>>& shap_rows) {
  if (!AuditEnabled()) return;
  if (static_cast<int64_t>(shap_rows.size()) != data.num_rows()) return;
  int64_t sample_rate;
  int top_k;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sample_rate = options_.sample_rate;
    top_k = options_.top_k;
  }
  const int64_t width = data.num_features();
  // Same chunked, prefix-key-sampled sweep as RecordPredictBatch, so a
  // row's predict and shap records always sample together.
  constexpr int64_t kChunk = 1024;
  const int64_t num_chunks = (data.num_rows() + kChunk - 1) / kChunk;
  std::vector<std::vector<AuditRecord>> chunks(static_cast<size_t>(num_chunks));
  DefaultPool().ParallelForChunks(
      data.num_rows(), kChunk, [&](int64_t chunk, int64_t begin, int64_t end) {
        std::vector<AuditRecord>& out = chunks[static_cast<size_t>(chunk)];
        for (int64_t r = begin; r < end; ++r) {
          const double* row = data.row(r);
          if (sample_rate > 1 &&
              !AuditSampled(AuditSampleKey(row, width), sample_rate)) {
            continue;
          }
          const std::vector<double>& phi = shap_rows[static_cast<size_t>(r)];
          // Top-k by |value|, ties by feature index: a total order, so the
          // selection is deterministic.
          std::vector<AuditShapEntry> entries;
          const auto num_phi = static_cast<int64_t>(
              std::min<size_t>(phi.size(), static_cast<size_t>(width)));
          for (int64_t i = 0; i < num_phi; ++i) {
            entries.push_back(
                {static_cast<int>(i), phi[static_cast<size_t>(i)]});
          }
          std::sort(entries.begin(), entries.end(),
                    [](const AuditShapEntry& a, const AuditShapEntry& b) {
                      const double ma = std::fabs(a.value);
                      const double mb = std::fabs(b.value);
                      if (ma != mb) return ma > mb;
                      return a.index < b.index;
                    });
          if (entries.size() > static_cast<size_t>(top_k)) {
            entries.resize(static_cast<size_t>(top_k));
          }
          AuditRecord record;
          record.type = "shap";
          record.row_fp = HashRow(row, width);
          record.model_fp = model_fp;
          record.features.assign(row, row + width);
          record.shap = std::move(entries);
          out.push_back(std::move(record));
        }
      });
  int64_t total = 0;
  for (const std::vector<AuditRecord>& chunk : chunks) {
    total += static_cast<int64_t>(chunk.size());
  }
  if (total == 0) return;
  static Counter* const sampled_counter =
      MetricsRegistry::Global().GetCounter("audit.records");
  sampled_counter->Increment(total);
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::vector<AuditRecord>& chunk : chunks) {
    for (AuditRecord& record : chunk) {
      records_.push_back(std::move(record));
    }
  }
}

int64_t AuditLog::record_count() {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(records_.size());
}

std::string AuditLog::SerializePayload() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Content sort: records are pure functions of (row, model, output), so
  // sorting by serialized text erases arrival order — the only thing a
  // thread count can change. Equal records are interchangeable.
  std::vector<std::string> sorted;
  sorted.reserve(records_.size());
  for (const AuditRecord& record : records_) {
    sorted.push_back(RecordJson(record));
  }
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{\"schema\":\"";
  out += kAuditSchema;
  out += "\",\"sample_rate\":";
  out += std::to_string(options_.sample_rate);
  out += ",\"top_k\":";
  out += std::to_string(options_.top_k);
  out += ",\"records\":";
  out += std::to_string(sorted.size());
  out += "}\n";
  for (const std::string& record : sorted) {
    out += record;
    out += '\n';
  }
  return out;
}

Status AuditLog::WriteToFile(const std::string& path) {
  return WriteFileChecksummed(path, SerializePayload());
}

Result<AuditFile> ParseAuditPayload(const std::string& payload) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < payload.size()) {
    size_t end = payload.find('\n', start);
    if (end == std::string::npos) end = payload.size();
    lines.push_back(payload.substr(start, end - start));
    start = end + 1;
  }
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.empty()) {
    return Status::DataLoss("audit: empty payload");
  }

  auto header_or = ParseJson(lines[0]);
  if (!header_or.ok()) {
    return Status::DataLoss("audit: malformed header: " +
                            header_or.status().message());
  }
  const JsonValue& header = *header_or;
  if (!header.is_object() || header.StringOr("schema", "") != kAuditSchema) {
    return Status::DataLoss(
        "audit: missing or unknown schema (want \"mysawh-audit v1\")");
  }
  AuditFile file;
  file.sample_rate = static_cast<int64_t>(header.NumberOr("sample_rate", 0));
  file.top_k = static_cast<int>(header.NumberOr("top_k", 0));
  if (file.sample_rate < 1 || file.top_k < 1) {
    return Status::DataLoss("audit: invalid header options");
  }
  const auto declared = static_cast<int64_t>(header.NumberOr("records", -1));
  if (declared != static_cast<int64_t>(lines.size()) - 1) {
    return Status::DataLoss("audit: header declares " +
                            std::to_string(declared) + " records, found " +
                            std::to_string(lines.size() - 1));
  }

  for (size_t i = 1; i < lines.size(); ++i) {
    auto record_or = ParseJson(lines[i]);
    if (!record_or.ok()) {
      return Status::DataLoss("audit: malformed record " + std::to_string(i) +
                              ": " + record_or.status().message());
    }
    const JsonValue& value = *record_or;
    if (!value.is_object()) {
      return Status::DataLoss("audit: record " + std::to_string(i) +
                              " is not an object");
    }
    AuditRecord record;
    record.type = value.StringOr("type", "");
    if (record.type != "predict" && record.type != "shap") {
      return Status::DataLoss("audit: record " + std::to_string(i) +
                              " has unknown type '" + record.type + "'");
    }
    MYSAWH_ASSIGN_OR_RETURN(record.row_fp,
                            ParseHexU64(value.StringOr("fp", "")));
    MYSAWH_ASSIGN_OR_RETURN(record.model_fp,
                            ParseHexU64(value.StringOr("model", "")));
    const JsonValue* features = value.Find("features");
    if (features == nullptr || !features->is_array() ||
        features->array_items().empty()) {
      return Status::DataLoss("audit: record " + std::to_string(i) +
                              " lacks features");
    }
    for (const JsonValue& item : features->array_items()) {
      record.features.push_back(item.is_null() ? std::nan("")
                                               : item.number_value());
    }
    // The fingerprint doubles as an integrity check on the feature list:
    // a record whose features no longer hash to its fp is corrupt even
    // when the envelope CRC (recomputed by an attacker or a re-wrap)
    // passes.
    if (HashRow(record.features.data(),
                static_cast<int64_t>(record.features.size())) !=
        record.row_fp) {
      return Status::DataLoss("audit: record " + std::to_string(i) +
                              " fingerprint does not match its features");
    }
    if (record.type == "predict") {
      const JsonValue* prediction = value.Find("prediction");
      if (prediction == nullptr ||
          (!prediction->is_number() && !prediction->is_null())) {
        return Status::DataLoss("audit: record " + std::to_string(i) +
                                " lacks a prediction");
      }
      record.prediction = prediction->is_null() ? std::nan("")
                                                : prediction->number_value();
    } else {
      const JsonValue* shap = value.Find("shap");
      if (shap == nullptr || !shap->is_array()) {
        return Status::DataLoss("audit: record " + std::to_string(i) +
                                " lacks shap attributions");
      }
      for (const JsonValue& item : shap->array_items()) {
        if (!item.is_object()) {
          return Status::DataLoss("audit: record " + std::to_string(i) +
                                  " has a malformed shap entry");
        }
        const JsonValue* index = item.Find("i");
        const JsonValue* entry_value = item.Find("v");
        if (index == nullptr || !index->is_number() || entry_value == nullptr ||
            (!entry_value->is_number() && !entry_value->is_null())) {
          return Status::DataLoss("audit: record " + std::to_string(i) +
                                  " has a malformed shap entry");
        }
        AuditShapEntry entry;
        entry.index = static_cast<int>(index->number_value());
        if (entry.index < 0 ||
            entry.index >= static_cast<int>(record.features.size())) {
          return Status::DataLoss("audit: record " + std::to_string(i) +
                                  " shap index out of range");
        }
        entry.value = entry_value->is_null() ? std::nan("")
                                             : entry_value->number_value();
        record.shap.push_back(entry);
      }
      if (record.shap.size() > static_cast<size_t>(file.top_k)) {
        return Status::DataLoss("audit: record " + std::to_string(i) +
                                " exceeds the header's top_k");
      }
    }
    file.records.push_back(std::move(record));
  }
  return file;
}

Result<AuditFile> ReadAuditFile(const std::string& path) {
  MYSAWH_ASSIGN_OR_RETURN(std::string payload, ReadFileChecksummed(path));
  return ParseAuditPayload(payload);
}

}  // namespace mysawh::core
