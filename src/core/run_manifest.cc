#include "core/run_manifest.h"

#include <cstdio>
#include <sstream>

#include "util/file_io.h"
#include "util/metrics.h"
#include "util/monitor.h"
#include "util/trace.h"
#include "util/version.h"

namespace mysawh::core {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Millis(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

}  // namespace

std::string BuildRunManifestJson(const StudyConfig& config,
                                 const StudyResult& result) {
  std::ostringstream os;
  os << "{";
  os << "\"schema\":\"mysawh-run-manifest v1\",";
  os << "\"git_describe\":\"" << JsonEscape(GitDescribe()) << "\",";
  os << "\"fingerprint\":\"" << JsonEscape(StudyFingerprint(config)) << "\",";
  os << "\"seed\":" << config.cohort.seed << ",";
  os << "\"eval_seed\":" << config.protocol.seed << ",";
  os << "\"model_family\":\"" << JsonEscape(ModelFamilyName(config.model_family))
     << "\",";
  os << "\"cells\":{";
  bool first = true;
  for (const auto& [key, timing] : result.timings) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(StudyCellName(key)) << "\":{"
       << "\"wall_ms\":" << Millis(timing.wall_ms) << ","
       << "\"cpu_ms\":" << Millis(timing.cpu_ms) << ","
       << "\"resumed\":" << (timing.resumed ? "true" : "false") << "}";
  }
  os << "},";
  os << "\"data_quality\":{";
  first = true;
  for (const auto& [key, profile] : result.profiles) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(StudyCellName(key))
       << "\":" << DataQualityJson(profile);
  }
  os << "},";
  os << "\"drift\":{";
  first = true;
  for (const auto& [key, json] : result.drift_jsons) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(StudyCellName(key)) << "\":" << json;
  }
  os << "},";
  os << "\"calibration\":{";
  first = true;
  for (const auto& [key, json] : result.calibration_jsons) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(StudyCellName(key)) << "\":" << json;
  }
  os << "},";
  os << "\"metrics\":" << MetricsRegistry::Global().SnapshotJson();
  // Optional live-observability blocks: the study's closing heartbeat when
  // a monitor is running, and the per-span cost table when this run traced
  // with cost attribution. Plain runs omit both, keeping the manifest
  // byte-stable for the pre-monitor pipeline.
  if (Monitor* monitor = Monitor::Current()) {
    std::string status = monitor->BuildHeartbeatJson(/*final_heartbeat=*/true);
    while (!status.empty() &&
           (status.back() == '\n' || status.back() == '\r')) {
      status.pop_back();
    }
    os << ",\"final_status\":" << status;
  }
  if (TracingEnabled() && CostAttributionEnabled()) {
    const std::string costs = Tracer::Global().CostTableJson(/*top_n=*/10);
    if (!costs.empty()) os << ",\"span_costs\":" << costs;
  }
  os << "}";
  return os.str();
}

Status WriteRunManifest(const std::string& path, const StudyConfig& config,
                        const StudyResult& result) {
  return WriteFileAtomic(path, BuildRunManifestJson(config, result) + "\n",
                         "manifest_write");
}

}  // namespace mysawh::core
