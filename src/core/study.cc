#include "core/study.h"

#include <sys/stat.h>
#include <time.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "cohort/simulator.h"
#include "core/calibration_monitor.h"
#include "core/checkpoint.h"
#include "util/failpoint.h"
#include "util/metrics.h"
#include "util/serialization.h"
#include "util/string_util.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace mysawh::core {

namespace {

Status EnsureCheckpointDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::Ok();
  return Status::IoError("cannot create checkpoint directory " + dir + ": " +
                         std::strerror(errno));
}

/// Study-grid instruments: resume hit/miss split plus full-cell latency.
/// `cells_total` lets the live monitor render "done/total" progress.
struct StudyMetrics {
  Counter* cells_computed;
  Counter* resume_hits;
  Counter* resume_misses;
  Gauge* cells_total;
  LatencyHistogram* cell_us;
};

StudyMetrics& Metrics() {
  static StudyMetrics metrics = [] {
    auto& registry = MetricsRegistry::Global();
    return StudyMetrics{registry.GetCounter("study.cells_computed"),
                        registry.GetCounter("study.resume_hits"),
                        registry.GetCounter("study.resume_misses"),
                        registry.GetGauge("study.cells_total"),
                        registry.GetHistogram("study.cell_us")};
  }();
  return metrics;
}

/// Thread CPU time of the calling thread in milliseconds (0.0 when the
/// clock is unavailable).
double ThreadCpuMillis() {
  struct timespec ts;
  if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) * 1e-6;
}

}  // namespace

std::string StudyCellName(const StudyCellKey& key) {
  return std::string(OutcomeName(key.outcome)) + "-" +
         ApproachName(key.approach) + (key.with_fi ? "-fi1" : "-fi0");
}

std::string StudyFingerprint(const StudyConfig& config) {
  std::ostringstream os;
  os << "seed=" << config.cohort.seed << " clinics=";
  for (const auto& clinic : config.cohort.clinics) {
    os << clinic.name << ":" << clinic.num_patients << ":"
       << EncodeDouble(clinic.answer_shift) << ":"
       << EncodeDouble(clinic.noise_scale) << ";";
  }
  os << " months=" << config.cohort.num_months
     << " gap=" << config.build.max_interpolation_gap
     << " imputation=" << static_cast<int>(config.build.imputation)
     << " miss=" << EncodeDouble(config.build.max_missing_fraction)
     << " test=" << EncodeDouble(config.protocol.test_fraction)
     << " folds=" << config.protocol.cv_folds
     << " eval_seed=" << config.protocol.seed
     << " threshold=" << EncodeDouble(config.protocol.decision_threshold)
     << " family=" << ModelFamilyName(config.model_family);
  return os.str();
}

Result<const ExperimentResult*> StudyResult::Cell(Outcome outcome,
                                                  Approach approach,
                                                  bool with_fi) const {
  const auto it = cells.find({outcome, approach, with_fi});
  if (it == cells.end()) {
    return Status::NotFound("study cell missing");
  }
  return &it->second;
}

std::string StudyResult::ToMarkdown() const {
  std::ostringstream os;
  os << "# DD vs KD study report\n\n";
  os << "Dataset: " << retained << " monthly samples retained of "
     << total_candidates << " candidates; PRO gaps: " << gap_stats.num_gaps
     << " (mean length " << FormatDouble(gap_stats.mean_length, 2) << ", max "
     << gap_stats.max_length << ").\n\n";

  os << "## Regression outcomes (1-MAPE, test partition)\n\n";
  os << "| Outcome | KD w/o FI | DD w/o FI | KD w/ FI | DD w/ FI |\n";
  os << "|---|---|---|---|---|\n";
  for (Outcome outcome : {Outcome::kQol, Outcome::kSppb}) {
    os << "| " << OutcomeName(outcome) << " |";
    for (bool with_fi : {false, true}) {
      for (Approach approach :
           {Approach::kKnowledgeDriven, Approach::kDataDriven}) {
        const auto it = cells.find({outcome, approach, with_fi});
        if (it == cells.end()) {
          os << " - |";
        } else {
          os << " "
             << FormatPercent(it->second.test_regression.one_minus_mape, 1)
             << " |";
        }
      }
    }
    os << "\n";
  }

  os << "\n## Falls classification (test partition)\n\n";
  os << "| Model | Accuracy | P(True) | R(True) | F1(True) | R(False) |\n";
  os << "|---|---|---|---|---|---|\n";
  for (bool with_fi : {false, true}) {
    for (Approach approach :
         {Approach::kKnowledgeDriven, Approach::kDataDriven}) {
      const auto it = cells.find({Outcome::kFalls, approach, with_fi});
      if (it == cells.end()) continue;
      const auto& m = it->second.test_classification;
      os << "| " << ApproachName(approach) << (with_fi ? " w/ FI" : " w/o FI")
         << " | " << FormatPercent(m.accuracy, 1) << " | "
         << FormatPercent(m.precision_true, 1) << " | "
         << FormatPercent(m.recall_true, 1) << " | "
         << FormatPercent(m.f1_true, 1) << " | "
         << FormatPercent(m.recall_false, 1) << " |\n";
    }
  }

  os << "\n## Reading\n\n"
     << "The data-driven models (gradient boosting over the raw PRO and\n"
     << "activity features) outperform the knowledge-driven ICI models on\n"
     << "every outcome, and the Frailty Index baseline feature improves\n"
     << "both approaches — the paper's central result.\n";
  return os.str();
}

Result<StudyResult> RunFullStudy(const StudyConfig& config) {
  cohort::CohortSimulator simulator(config.cohort);
  StudyResult study;
  cohort::Cohort cohort;
  {
    TraceSpan span("study.generate_cohort", "study");
    MYSAWH_ASSIGN_OR_RETURN(cohort, simulator.Generate());
  }
  // Build all sample sets up front (the builder is stateful), then fan the
  // twelve independent cells out over a pool. Each cell seeds its own Rng
  // from the protocol, so the grid is deterministic for any thread count.
  struct CellJob {
    const Dataset* data = nullptr;
    Outcome outcome = Outcome::kQol;
    Approach approach = Approach::kDataDriven;
    bool with_fi = false;
  };
  std::vector<SampleSets> all_sets;
  all_sets.reserve(3);  // jobs hold pointers into all_sets; no reallocation
  std::vector<CellJob> jobs;
  {
    TraceSpan build_span("study.build_samples", "study");
    MYSAWH_ASSIGN_OR_RETURN(SampleSetBuilder builder,
                            SampleSetBuilder::Create(&cohort, config.build));
    for (Outcome outcome : {Outcome::kQol, Outcome::kSppb, Outcome::kFalls}) {
      MYSAWH_ASSIGN_OR_RETURN(SampleSets sets, builder.Build(outcome));
      if (outcome == Outcome::kQol) {
        study.total_candidates = sets.total_candidates;
        study.retained = sets.retained;
        study.gap_stats = sets.gap_stats_raw;
      }
      all_sets.push_back(std::move(sets));
      const SampleSets& stored = all_sets.back();
      jobs.push_back({&stored.kd, outcome, Approach::kKnowledgeDriven, false});
      jobs.push_back(
          {&stored.kd_fi, outcome, Approach::kKnowledgeDriven, true});
      jobs.push_back({&stored.dd, outcome, Approach::kDataDriven, false});
      jobs.push_back({&stored.dd_fi, outcome, Approach::kDataDriven, true});
    }
  }

  int num_threads = config.num_threads;
  if (num_threads == 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  const bool checkpointing = !config.checkpoint_dir.empty();
  const std::string fingerprint = StudyFingerprint(config);
  if (checkpointing) {
    MYSAWH_RETURN_NOT_OK(EnsureCheckpointDir(config.checkpoint_dir));
  }
  ThreadPool pool(num_threads);
  Metrics().cells_total->Set(static_cast<int64_t>(jobs.size()));
  std::vector<Result<ExperimentResult>> outcomes_by_cell;
  outcomes_by_cell.reserve(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    outcomes_by_cell.emplace_back(Status::Internal("cell never ran"));
  }
  std::vector<CellTiming> timings_by_cell(jobs.size());
  pool.ParallelFor(static_cast<int64_t>(jobs.size()), [&](int64_t i) {
    const CellJob& job = jobs[static_cast<size_t>(i)];
    auto& slot = outcomes_by_cell[static_cast<size_t>(i)];
    CellTiming& timing = timings_by_cell[static_cast<size_t>(i)];
    const StudyCellKey key{job.outcome, job.approach, job.with_fi};
    // Span names are dynamic, so build one only when tracing is on (the
    // disabled fast path must not allocate).
    TraceSpan cell_span;
    if (TracingEnabled()) {
      cell_span = TraceSpan("study.cell/" + StudyCellName(key), "study");
    }
    // Each cell runs wholly on one pool thread, so a thread-local telemetry
    // context uniquely labels its streams ("QoL-DD-fi0/cv2/train", ...)
    // regardless of which worker picked the cell up.
    TelemetryScope cell_scope(StudyCellName(key));
    ScopedLatencyTimer cell_timer(Metrics().cell_us);
    const auto wall_start = std::chrono::steady_clock::now();
    const double cpu_start = ThreadCpuMillis();
    auto finish_timing = [&](bool resumed) {
      timing.wall_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
      timing.cpu_ms = ThreadCpuMillis() - cpu_start;
      timing.resumed = resumed;
    };
    if (checkpointing && config.resume) {
      Result<ExperimentResult> loaded =
          LoadCellCheckpoint(config.checkpoint_dir, fingerprint, job.outcome,
                             job.approach, job.with_fi);
      if (loaded.ok()) {
        Metrics().resume_hits->Increment();
        slot = std::move(loaded);
        finish_timing(/*resumed=*/true);
        return;
      }
      // NotFound (never checkpointed), DataLoss (corrupt file) and
      // FailedPrecondition (different configuration) all mean the same
      // thing here: this cell must be recomputed.
      Metrics().resume_misses->Increment();
    }
    if (auto injected = FailpointRegistry::Global().Check("study/cell_run")) {
      slot = *std::move(injected);
      finish_timing(/*resumed=*/false);
      return;
    }
    ModelFamilyConfig model_config =
        DefaultModelConfig(job.outcome, job.approach, config.model_family);
    slot = RunExperiment(*job.data, job.outcome, job.approach, job.with_fi,
                         model_config, config.protocol);
    Metrics().cells_computed->Increment();
    if (slot.ok() && checkpointing) {
      const Status saved =
          SaveCellCheckpoint(config.checkpoint_dir, fingerprint, *slot);
      // A cell whose checkpoint cannot be written counts as failed: the
      // study's contract is that a later --resume never silently re-runs
      // work it reported as persisted.
      if (!saved.ok()) slot = saved;
    }
    finish_timing(/*resumed=*/false);
  });

  // Collect in grid order so the first error reported is deterministic too.
  for (size_t i = 0; i < jobs.size(); ++i) {
    const StudyCellKey key{jobs[i].outcome, jobs[i].approach,
                           jobs[i].with_fi};
    MYSAWH_ASSIGN_OR_RETURN(ExperimentResult result,
                            std::move(outcomes_by_cell[i]));
    study.cells.emplace(key, std::move(result));
    study.timings.emplace(key, timings_by_cell[i]);
  }
  // Profile each cell's train/test partition for the run manifest. Pure
  // function of the datasets, so this adds no nondeterminism and never
  // influences the metrics above. Cells resumed from a checkpoint carry
  // only their metrics, not their partitions, so they have no profile.
  {
    TraceSpan profile_span("study.profile_cells", "study");
    for (auto& [key, cell] : study.cells) {
      if (cell.train.num_rows() == 0 || cell.test.num_rows() == 0) continue;
      MYSAWH_ASSIGN_OR_RETURN(
          DataQualityProfile profile,
          ProfilePartition(cell.train, cell.test, cell.is_classification));
      study.profiles.emplace(key, std::move(profile));
    }
  }
  // Model-quality post-pass: per cell, drift of the test partition against
  // a train-time baseline, plus calibration (Falls) or error quantiles
  // (regression) of the test predictions. Serial, pure functions of the
  // already-trained models and partitions — like the profiles above, it
  // feeds only the manifest (and gauges), never REPORT.md.
  {
    TraceSpan quality_span("study.model_quality", "study");
    for (auto& [key, cell] : study.cells) {
      if (cell.train.num_rows() == 0 || cell.test.num_rows() == 0) continue;
      if (cell.model == nullptr) continue;
      MYSAWH_ASSIGN_OR_RETURN(std::vector<double> train_preds,
                              cell.model->PredictBatch(cell.train));
      MYSAWH_ASSIGN_OR_RETURN(std::vector<double> test_preds,
                              cell.model->PredictBatch(cell.test));
      MYSAWH_ASSIGN_OR_RETURN(
          DriftBaseline baseline,
          BuildDriftBaseline(cell.train, train_preds, config.drift_bins));
      MYSAWH_ASSIGN_OR_RETURN(
          DriftReport drift,
          EvaluateDrift(baseline, cell.test, test_preds,
                        config.drift_thresholds));
      study.drift_jsons.emplace(key, DriftReportJson(drift));
      const std::string cell_name = StudyCellName(key);
      const std::vector<double>& labels = cell.test.labels();
      if (cell.is_classification) {
        MYSAWH_ASSIGN_OR_RETURN(
            CalibrationReport calibration,
            ComputeCalibration(labels, test_preds, config.calibration_bins));
        PublishCalibrationGauges(cell_name, calibration);
        study.calibration_jsons.emplace(key, CalibrationJson(calibration));
      } else {
        MYSAWH_ASSIGN_OR_RETURN(ErrorQuantiles quantiles,
                                ComputeErrorQuantiles(labels, test_preds));
        PublishErrorQuantileGauges(cell_name, quantiles);
        study.calibration_jsons.emplace(key, ErrorQuantilesJson(quantiles));
      }
    }
  }
  return study;
}

}  // namespace mysawh::core
