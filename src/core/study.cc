#include "core/study.h"

#include <sstream>

#include "cohort/simulator.h"
#include "util/string_util.h"

namespace mysawh::core {

Result<const ExperimentResult*> StudyResult::Cell(Outcome outcome,
                                                  Approach approach,
                                                  bool with_fi) const {
  const auto it = cells.find({outcome, approach, with_fi});
  if (it == cells.end()) {
    return Status::NotFound("study cell missing");
  }
  return &it->second;
}

std::string StudyResult::ToMarkdown() const {
  std::ostringstream os;
  os << "# DD vs KD study report\n\n";
  os << "Dataset: " << retained << " monthly samples retained of "
     << total_candidates << " candidates; PRO gaps: " << gap_stats.num_gaps
     << " (mean length " << FormatDouble(gap_stats.mean_length, 2) << ", max "
     << gap_stats.max_length << ").\n\n";

  os << "## Regression outcomes (1-MAPE, test partition)\n\n";
  os << "| Outcome | KD w/o FI | DD w/o FI | KD w/ FI | DD w/ FI |\n";
  os << "|---|---|---|---|---|\n";
  for (Outcome outcome : {Outcome::kQol, Outcome::kSppb}) {
    os << "| " << OutcomeName(outcome) << " |";
    for (bool with_fi : {false, true}) {
      for (Approach approach :
           {Approach::kKnowledgeDriven, Approach::kDataDriven}) {
        const auto it = cells.find({outcome, approach, with_fi});
        if (it == cells.end()) {
          os << " - |";
        } else {
          os << " "
             << FormatPercent(it->second.test_regression.one_minus_mape, 1)
             << " |";
        }
      }
    }
    os << "\n";
  }

  os << "\n## Falls classification (test partition)\n\n";
  os << "| Model | Accuracy | P(True) | R(True) | F1(True) | R(False) |\n";
  os << "|---|---|---|---|---|---|\n";
  for (bool with_fi : {false, true}) {
    for (Approach approach :
         {Approach::kKnowledgeDriven, Approach::kDataDriven}) {
      const auto it = cells.find({Outcome::kFalls, approach, with_fi});
      if (it == cells.end()) continue;
      const auto& m = it->second.test_classification;
      os << "| " << ApproachName(approach) << (with_fi ? " w/ FI" : " w/o FI")
         << " | " << FormatPercent(m.accuracy, 1) << " | "
         << FormatPercent(m.precision_true, 1) << " | "
         << FormatPercent(m.recall_true, 1) << " | "
         << FormatPercent(m.f1_true, 1) << " | "
         << FormatPercent(m.recall_false, 1) << " |\n";
    }
  }

  os << "\n## Reading\n\n"
     << "The data-driven models (gradient boosting over the raw PRO and\n"
     << "activity features) outperform the knowledge-driven ICI models on\n"
     << "every outcome, and the Frailty Index baseline feature improves\n"
     << "both approaches — the paper's central result.\n";
  return os.str();
}

Result<StudyResult> RunFullStudy(const StudyConfig& config) {
  cohort::CohortSimulator simulator(config.cohort);
  MYSAWH_ASSIGN_OR_RETURN(cohort::Cohort cohort, simulator.Generate());
  MYSAWH_ASSIGN_OR_RETURN(SampleSetBuilder builder,
                          SampleSetBuilder::Create(&cohort, config.build));
  StudyResult study;
  for (Outcome outcome : {Outcome::kQol, Outcome::kSppb, Outcome::kFalls}) {
    MYSAWH_ASSIGN_OR_RETURN(SampleSets sets, builder.Build(outcome));
    if (outcome == Outcome::kQol) {
      study.total_candidates = sets.total_candidates;
      study.retained = sets.retained;
      study.gap_stats = sets.gap_stats_raw;
    }
    const struct {
      const Dataset* data;
      Approach approach;
      bool with_fi;
    } grid[] = {
        {&sets.kd, Approach::kKnowledgeDriven, false},
        {&sets.kd_fi, Approach::kKnowledgeDriven, true},
        {&sets.dd, Approach::kDataDriven, false},
        {&sets.dd_fi, Approach::kDataDriven, true},
    };
    for (const auto& cell : grid) {
      MYSAWH_ASSIGN_OR_RETURN(
          ExperimentResult result,
          RunExperiment(*cell.data, outcome, cell.approach, cell.with_fi,
                        config.protocol));
      study.cells.emplace(
          StudyCellKey{outcome, cell.approach, cell.with_fi},
          std::move(result));
    }
  }
  return study;
}

}  // namespace mysawh::core
