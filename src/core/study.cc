#include "core/study.h"

#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "cohort/simulator.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace mysawh::core {

Result<const ExperimentResult*> StudyResult::Cell(Outcome outcome,
                                                  Approach approach,
                                                  bool with_fi) const {
  const auto it = cells.find({outcome, approach, with_fi});
  if (it == cells.end()) {
    return Status::NotFound("study cell missing");
  }
  return &it->second;
}

std::string StudyResult::ToMarkdown() const {
  std::ostringstream os;
  os << "# DD vs KD study report\n\n";
  os << "Dataset: " << retained << " monthly samples retained of "
     << total_candidates << " candidates; PRO gaps: " << gap_stats.num_gaps
     << " (mean length " << FormatDouble(gap_stats.mean_length, 2) << ", max "
     << gap_stats.max_length << ").\n\n";

  os << "## Regression outcomes (1-MAPE, test partition)\n\n";
  os << "| Outcome | KD w/o FI | DD w/o FI | KD w/ FI | DD w/ FI |\n";
  os << "|---|---|---|---|---|\n";
  for (Outcome outcome : {Outcome::kQol, Outcome::kSppb}) {
    os << "| " << OutcomeName(outcome) << " |";
    for (bool with_fi : {false, true}) {
      for (Approach approach :
           {Approach::kKnowledgeDriven, Approach::kDataDriven}) {
        const auto it = cells.find({outcome, approach, with_fi});
        if (it == cells.end()) {
          os << " - |";
        } else {
          os << " "
             << FormatPercent(it->second.test_regression.one_minus_mape, 1)
             << " |";
        }
      }
    }
    os << "\n";
  }

  os << "\n## Falls classification (test partition)\n\n";
  os << "| Model | Accuracy | P(True) | R(True) | F1(True) | R(False) |\n";
  os << "|---|---|---|---|---|---|\n";
  for (bool with_fi : {false, true}) {
    for (Approach approach :
         {Approach::kKnowledgeDriven, Approach::kDataDriven}) {
      const auto it = cells.find({Outcome::kFalls, approach, with_fi});
      if (it == cells.end()) continue;
      const auto& m = it->second.test_classification;
      os << "| " << ApproachName(approach) << (with_fi ? " w/ FI" : " w/o FI")
         << " | " << FormatPercent(m.accuracy, 1) << " | "
         << FormatPercent(m.precision_true, 1) << " | "
         << FormatPercent(m.recall_true, 1) << " | "
         << FormatPercent(m.f1_true, 1) << " | "
         << FormatPercent(m.recall_false, 1) << " |\n";
    }
  }

  os << "\n## Reading\n\n"
     << "The data-driven models (gradient boosting over the raw PRO and\n"
     << "activity features) outperform the knowledge-driven ICI models on\n"
     << "every outcome, and the Frailty Index baseline feature improves\n"
     << "both approaches — the paper's central result.\n";
  return os.str();
}

Result<StudyResult> RunFullStudy(const StudyConfig& config) {
  cohort::CohortSimulator simulator(config.cohort);
  MYSAWH_ASSIGN_OR_RETURN(cohort::Cohort cohort, simulator.Generate());
  MYSAWH_ASSIGN_OR_RETURN(SampleSetBuilder builder,
                          SampleSetBuilder::Create(&cohort, config.build));
  StudyResult study;

  // Build all sample sets up front (the builder is stateful), then fan the
  // twelve independent cells out over a pool. Each cell seeds its own Rng
  // from the protocol, so the grid is deterministic for any thread count.
  struct CellJob {
    const Dataset* data = nullptr;
    Outcome outcome = Outcome::kQol;
    Approach approach = Approach::kDataDriven;
    bool with_fi = false;
  };
  std::vector<SampleSets> all_sets;
  all_sets.reserve(3);  // jobs hold pointers into all_sets; no reallocation
  std::vector<CellJob> jobs;
  for (Outcome outcome : {Outcome::kQol, Outcome::kSppb, Outcome::kFalls}) {
    MYSAWH_ASSIGN_OR_RETURN(SampleSets sets, builder.Build(outcome));
    if (outcome == Outcome::kQol) {
      study.total_candidates = sets.total_candidates;
      study.retained = sets.retained;
      study.gap_stats = sets.gap_stats_raw;
    }
    all_sets.push_back(std::move(sets));
    const SampleSets& stored = all_sets.back();
    jobs.push_back({&stored.kd, outcome, Approach::kKnowledgeDriven, false});
    jobs.push_back({&stored.kd_fi, outcome, Approach::kKnowledgeDriven, true});
    jobs.push_back({&stored.dd, outcome, Approach::kDataDriven, false});
    jobs.push_back({&stored.dd_fi, outcome, Approach::kDataDriven, true});
  }

  int num_threads = config.num_threads;
  if (num_threads == 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  ThreadPool pool(num_threads);
  std::vector<Result<ExperimentResult>> outcomes_by_cell;
  outcomes_by_cell.reserve(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    outcomes_by_cell.emplace_back(Status::Internal("cell never ran"));
  }
  pool.ParallelFor(static_cast<int64_t>(jobs.size()), [&](int64_t i) {
    const CellJob& job = jobs[static_cast<size_t>(i)];
    ModelFamilyConfig model_config =
        DefaultModelConfig(job.outcome, job.approach, config.model_family);
    outcomes_by_cell[static_cast<size_t>(i)] =
        RunExperiment(*job.data, job.outcome, job.approach, job.with_fi,
                      model_config, config.protocol);
  });

  // Collect in grid order so the first error reported is deterministic too.
  for (size_t i = 0; i < jobs.size(); ++i) {
    MYSAWH_ASSIGN_OR_RETURN(ExperimentResult result,
                            std::move(outcomes_by_cell[i]));
    study.cells.emplace(
        StudyCellKey{jobs[i].outcome, jobs[i].approach, jobs[i].with_fi},
        std::move(result));
  }
  return study;
}

}  // namespace mysawh::core
