#ifndef MYSAWH_CORE_FI_H_
#define MYSAWH_CORE_FI_H_

#include <vector>

#include "cohort/cohort.h"
#include "util/status.h"

namespace mysawh::core {

/// Computes a Frailty Index from a visit's deficit vector following the
/// standard accumulation-of-deficits procedure (Searle et al. 2008, the
/// paper's reference [22]): the proportion of deficits present, each coded
/// in [0, 1]. Fails on an empty vector or out-of-range codes.
Result<double> ComputeFrailtyIndex(const std::vector<double>& deficits);

/// FI at each visit of a patient (one value per visit: months 0, 9, ...).
Result<std::vector<double>> PatientFrailtyTrajectory(
    const cohort::PatientData& patient);

}  // namespace mysawh::core

#endif  // MYSAWH_CORE_FI_H_
