#include "core/calibration_monitor.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/metrics.h"
#include "util/telemetry.h"

namespace mysawh::core {
namespace {

/// Unit-interval score -> integer parts-per-million for int64 gauges.
int64_t Ppm(double value) {
  if (std::isnan(value)) return -1;
  return static_cast<int64_t>(std::llround(value * 1e6));
}

}  // namespace

Result<CalibrationReport> ComputeCalibration(const std::vector<double>& labels,
                                             const std::vector<double>& preds,
                                             int num_bins) {
  if (labels.size() != preds.size()) {
    return Status::InvalidArgument(
        "ComputeCalibration: " + std::to_string(labels.size()) +
        " labels vs " + std::to_string(preds.size()) + " predictions");
  }
  std::vector<double> usable_labels;
  std::vector<double> usable_preds;
  usable_labels.reserve(labels.size());
  usable_preds.reserve(preds.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    if (std::isnan(labels[i]) || std::isnan(preds[i])) continue;
    usable_labels.push_back(labels[i]);
    usable_preds.push_back(preds[i]);
  }
  if (usable_labels.empty()) {
    return Status::InvalidArgument("ComputeCalibration: no usable rows");
  }
  CalibrationReport report;
  report.rows = static_cast<int64_t>(usable_labels.size());
  report.num_bins = num_bins;
  MYSAWH_ASSIGN_OR_RETURN(report.brier,
                          BrierScore(usable_labels, usable_preds));
  MYSAWH_ASSIGN_OR_RETURN(
      report.bins,
      ComputeCalibrationBins(usable_labels, usable_preds, num_bins));
  double ece_sum = 0.0;
  for (const CalibrationBin& bin : report.bins) {
    ece_sum += static_cast<double>(bin.count) *
               std::fabs(bin.mean_predicted - bin.observed_rate);
  }
  report.ece = ece_sum / static_cast<double>(report.rows);
  return report;
}

Result<ErrorQuantiles> ComputeErrorQuantiles(const std::vector<double>& labels,
                                             const std::vector<double>& preds) {
  if (labels.size() != preds.size()) {
    return Status::InvalidArgument(
        "ComputeErrorQuantiles: " + std::to_string(labels.size()) +
        " labels vs " + std::to_string(preds.size()) + " predictions");
  }
  std::vector<double> errors;
  errors.reserve(labels.size());
  double sum = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (std::isnan(labels[i]) || std::isnan(preds[i])) continue;
    const double err = std::fabs(labels[i] - preds[i]);
    errors.push_back(err);
    sum += err;
  }
  if (errors.empty()) {
    return Status::InvalidArgument("ComputeErrorQuantiles: no usable rows");
  }
  std::sort(errors.begin(), errors.end());
  ErrorQuantiles out;
  out.rows = static_cast<int64_t>(errors.size());
  out.mae = sum / static_cast<double>(errors.size());
  const auto at_quantile = [&](double q) {
    // rank = ceil(q * n), 1-based: the smallest error with at least a q
    // fraction of the mass at or below it.
    const auto n = static_cast<double>(errors.size());
    auto rank = static_cast<size_t>(std::ceil(q * n));
    if (rank < 1) rank = 1;
    if (rank > errors.size()) rank = errors.size();
    return errors[rank - 1];
  };
  out.p50 = at_quantile(0.50);
  out.p90 = at_quantile(0.90);
  out.p99 = at_quantile(0.99);
  out.max_err = errors.back();
  return out;
}

std::string CalibrationJson(const CalibrationReport& report) {
  std::string out = "{\"kind\":\"classification\",\"rows\":";
  out += std::to_string(report.rows);
  out += ",\"num_bins\":";
  out += std::to_string(report.num_bins);
  out += ",\"brier\":";
  out += TelemetryDouble(report.brier);
  out += ",\"ece\":";
  out += TelemetryDouble(report.ece);
  out += ",\"bins\":[";
  for (size_t b = 0; b < report.bins.size(); ++b) {
    if (b > 0) out += ',';
    const CalibrationBin& bin = report.bins[b];
    out += "{\"count\":";
    out += std::to_string(bin.count);
    out += ",\"mean_pred\":";
    out += TelemetryDouble(bin.mean_predicted);
    out += ",\"mean_obs\":";
    out += TelemetryDouble(bin.observed_rate);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string ErrorQuantilesJson(const ErrorQuantiles& quantiles) {
  std::string out = "{\"kind\":\"regression\",\"rows\":";
  out += std::to_string(quantiles.rows);
  out += ",\"mae\":";
  out += TelemetryDouble(quantiles.mae);
  out += ",\"p50\":";
  out += TelemetryDouble(quantiles.p50);
  out += ",\"p90\":";
  out += TelemetryDouble(quantiles.p90);
  out += ",\"p99\":";
  out += TelemetryDouble(quantiles.p99);
  out += ",\"max\":";
  out += TelemetryDouble(quantiles.max_err);
  out += '}';
  return out;
}

void PublishCalibrationGauges(const std::string& label,
                              const CalibrationReport& report) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetGauge("calibration." + label + ".ece_ppm")->Set(Ppm(report.ece));
  registry.GetGauge("calibration." + label + ".brier_ppm")
      ->Set(Ppm(report.brier));
  registry.GetGauge("calibration." + label + ".rows")->Set(report.rows);
}

void PublishErrorQuantileGauges(const std::string& label,
                                const ErrorQuantiles& quantiles) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetGauge("calibration." + label + ".mae_ppm")
      ->Set(Ppm(quantiles.mae));
  registry.GetGauge("calibration." + label + ".p90_ppm")
      ->Set(Ppm(quantiles.p90));
  registry.GetGauge("calibration." + label + ".rows")->Set(quantiles.rows);
}

}  // namespace mysawh::core
