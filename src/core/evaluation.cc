#include "core/evaluation.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "data/split.h"
#include "linear/linear_model.h"
#include "util/rng.h"
#include "util/telemetry.h"

namespace mysawh::core {

const char* ApproachName(Approach approach) {
  return approach == Approach::kDataDriven ? "DD" : "KD";
}

const char* ModelFamilyName(ModelFamily family) {
  switch (family) {
    case ModelFamily::kGbt:
      return "gbt";
    case ModelFamily::kLinear:
      return "linear";
    case ModelFamily::kGam:
      return "gam";
  }
  return "unknown";
}

Result<ModelFamily> ParseModelFamily(const std::string& name) {
  if (name == "gbt") return ModelFamily::kGbt;
  if (name == "linear") return ModelFamily::kLinear;
  if (name == "gam") return ModelFamily::kGam;
  return Status::InvalidArgument(
      "unknown model family: " + name + " (expected gbt, linear, or gam)");
}

double ExperimentResult::HeadlineMetric() const {
  return is_classification ? test_classification.accuracy
                           : test_regression.one_minus_mape;
}

gbt::GbtParams DefaultGbtParams(Outcome outcome, Approach approach) {
  gbt::GbtParams params;
  params.tree_method = gbt::TreeMethod::kHist;
  params.learning_rate = 0.07;
  params.num_trees = 300;
  params.subsample = 0.9;
  params.reg_lambda = 1.0;
  params.seed = 7;
  if (approach == Approach::kDataDriven) {
    params.max_depth = 4;
    params.colsample_bytree = 0.8;
    params.min_samples_leaf = 4;
  } else {
    // KD models see only the 1-2 index features.
    params.max_depth = 3;
    params.colsample_bytree = 1.0;
    params.min_samples_leaf = 8;
  }
  if (IsClassification(outcome)) {
    // Vanilla logistic boosting, as the paper's XGBoost setup: no class
    // weighting (GbtParams::scale_pos_weight is available for users who
    // want to trade precision for minority recall).
    params.objective = gbt::ObjectiveType::kLogistic;
  } else {
    params.objective = gbt::ObjectiveType::kSquaredError;
  }
  return params;
}

ModelFamilyConfig DefaultModelConfig(Outcome outcome, Approach approach,
                                     ModelFamily family) {
  ModelFamilyConfig config;
  config.family = family;
  config.gbt = DefaultGbtParams(outcome, approach);
  config.gam.objective = IsClassification(outcome)
                             ? gbt::ObjectiveType::kLogistic
                             : gbt::ObjectiveType::kSquaredError;
  return config;
}

Result<std::unique_ptr<model::Model>> TrainModel(
    const Dataset& train, Outcome outcome, const ModelFamilyConfig& config,
    const Dataset* validation) {
  switch (config.family) {
    case ModelFamily::kGbt: {
      MYSAWH_ASSIGN_OR_RETURN(
          gbt::GbtModel model,
          gbt::GbtModel::Train(train, config.gbt, validation));
      return std::unique_ptr<model::Model>(
          new gbt::GbtModel(std::move(model)));
    }
    case ModelFamily::kLinear: {
      // The linear family resolves to logistic regression when the outcome
      // is a classification task, so probabilities come out calibrated.
      if (IsClassification(outcome)) {
        MYSAWH_ASSIGN_OR_RETURN(
            linear::LogisticModel model,
            linear::LogisticModel::Train(train, config.linear_lambda));
        return std::unique_ptr<model::Model>(
            new linear::LogisticModel(std::move(model)));
      }
      MYSAWH_ASSIGN_OR_RETURN(
          linear::LinearModel model,
          linear::LinearModel::Train(train, config.linear_lambda));
      return std::unique_ptr<model::Model>(
          new linear::LinearModel(std::move(model)));
    }
    case ModelFamily::kGam: {
      // Force the objective to match the outcome type so predictions are
      // always on the scale the metrics expect.
      gam::GamParams params = config.gam;
      params.objective = IsClassification(outcome)
                             ? gbt::ObjectiveType::kLogistic
                             : gbt::ObjectiveType::kSquaredError;
      MYSAWH_ASSIGN_OR_RETURN(gam::GamModel model,
                              gam::GamModel::Train(train, params));
      return std::unique_ptr<model::Model>(
          new gam::GamModel(std::move(model)));
    }
  }
  return Status::InvalidArgument("unknown model family");
}

namespace {

/// Mean of per-fold regression metrics.
RegressionMetrics MeanRegression(const std::vector<RegressionMetrics>& folds) {
  RegressionMetrics mean;
  if (folds.empty()) return mean;
  for (const auto& f : folds) {
    mean.mae += f.mae;
    mean.rmse += f.rmse;
    mean.mape += f.mape;
    mean.n += f.n;
    mean.mape_skipped += f.mape_skipped;
  }
  const auto k = static_cast<double>(folds.size());
  mean.mae /= k;
  mean.rmse /= k;
  mean.mape /= k;
  mean.one_minus_mape = 1.0 - mean.mape;
  return mean;
}

/// Mean of per-fold classification metrics (ratios averaged, counts summed).
ClassificationMetrics MeanClassification(
    const std::vector<ClassificationMetrics>& folds) {
  ClassificationMetrics mean;
  if (folds.empty()) return mean;
  for (const auto& f : folds) {
    mean.tp += f.tp;
    mean.fp += f.fp;
    mean.tn += f.tn;
    mean.fn += f.fn;
    mean.accuracy += f.accuracy;
    mean.precision_true += f.precision_true;
    mean.precision_false += f.precision_false;
    mean.recall_true += f.recall_true;
    mean.recall_false += f.recall_false;
    mean.f1_true += f.f1_true;
    mean.f1_false += f.f1_false;
  }
  const auto k = static_cast<double>(folds.size());
  mean.accuracy /= k;
  mean.precision_true /= k;
  mean.precision_false /= k;
  mean.recall_true /= k;
  mean.recall_false /= k;
  mean.f1_true /= k;
  mean.f1_false /= k;
  return mean;
}

/// Family-specific hyperparameter validation.
Status ValidateConfig(const ModelFamilyConfig& config) {
  switch (config.family) {
    case ModelFamily::kGbt:
      return config.gbt.Validate();
    case ModelFamily::kGam:
      return config.gam.Validate();
    case ModelFamily::kLinear:
      if (config.linear_lambda < 0.0) {
        return Status::InvalidArgument("linear_lambda must be >= 0");
      }
      return Status::Ok();
  }
  return Status::InvalidArgument("unknown model family");
}

}  // namespace

Result<ExperimentResult> RunExperiment(const Dataset& samples, Outcome outcome,
                                       Approach approach, bool with_fi,
                                       const ModelFamilyConfig& config,
                                       const EvalProtocol& protocol) {
  if (samples.num_rows() < 10) {
    return Status::InvalidArgument("experiment needs at least 10 samples");
  }
  if (protocol.cv_folds < 2) {
    return Status::InvalidArgument("cv_folds must be >= 2");
  }
  MYSAWH_RETURN_NOT_OK(ValidateConfig(config));

  ExperimentResult result;
  result.outcome = outcome;
  result.approach = approach;
  result.with_fi = with_fi;
  result.is_classification = IsClassification(outcome);

  Rng rng(protocol.seed);
  TrainTestIndices split;
  if (result.is_classification) {
    MYSAWH_ASSIGN_OR_RETURN(
        split,
        StratifiedTrainTestSplit(samples.labels(), protocol.test_fraction,
                                 &rng));
  } else {
    MYSAWH_ASSIGN_OR_RETURN(
        split, TrainTestSplit(samples.num_rows(), protocol.test_fraction,
                              &rng));
  }
  MYSAWH_ASSIGN_OR_RETURN(result.train, samples.Take(split.train));
  MYSAWH_ASSIGN_OR_RETURN(result.test, samples.Take(split.test));

  // K-fold CV on the train partition.
  std::vector<Fold> folds;
  if (result.is_classification) {
    MYSAWH_ASSIGN_OR_RETURN(
        folds,
        StratifiedKFoldSplit(result.train.labels(), protocol.cv_folds, &rng));
  } else {
    MYSAWH_ASSIGN_OR_RETURN(
        folds, KFoldSplit(result.train.num_rows(), protocol.cv_folds, &rng));
  }
  std::vector<RegressionMetrics> fold_reg;
  std::vector<ClassificationMetrics> fold_cls;
  for (size_t fold_index = 0; fold_index < folds.size(); ++fold_index) {
    const Fold& fold = folds[fold_index];
    MYSAWH_ASSIGN_OR_RETURN(Dataset fold_train,
                            result.train.Take(fold.train));
    MYSAWH_ASSIGN_OR_RETURN(Dataset fold_valid,
                            result.train.Take(fold.validation));
    // With telemetry on, the fold's held-out side is tracked per boosting
    // round (stream "<context>/cv<k>/train"). Early stopping is off in the
    // study protocol, so the trained model — and therefore every reported
    // metric — is bit-identical whether or not the validation set is
    // passed through.
    TelemetryScope fold_scope("cv" + std::to_string(fold_index));
    MYSAWH_ASSIGN_OR_RETURN(
        std::unique_ptr<model::Model> model,
        TrainModel(fold_train, outcome, config,
                   TelemetryEnabled() ? &fold_valid : nullptr));
    MYSAWH_ASSIGN_OR_RETURN(std::vector<double> preds,
                            model->PredictBatch(fold_valid));
    if (result.is_classification) {
      MYSAWH_ASSIGN_OR_RETURN(
          ClassificationMetrics m,
          ComputeClassificationMetrics(fold_valid.labels(), preds,
                                       protocol.decision_threshold));
      fold_cls.push_back(m);
    } else {
      MYSAWH_ASSIGN_OR_RETURN(
          RegressionMetrics m,
          ComputeRegressionMetrics(fold_valid.labels(), preds));
      fold_reg.push_back(m);
    }
  }
  result.cv_regression = MeanRegression(fold_reg);
  result.cv_classification = MeanClassification(fold_cls);

  // Final model on all train rows, evaluated on the held-out test rows.
  {
    TelemetryScope final_scope("final");
    MYSAWH_ASSIGN_OR_RETURN(
        result.model,
        TrainModel(result.train, outcome, config,
                   TelemetryEnabled() ? &result.test : nullptr));
  }
  MYSAWH_ASSIGN_OR_RETURN(std::vector<double> test_preds,
                          result.model->PredictBatch(result.test));
  if (result.is_classification) {
    MYSAWH_ASSIGN_OR_RETURN(
        result.test_classification,
        ComputeClassificationMetrics(result.test.labels(), test_preds,
                                     protocol.decision_threshold));
  } else {
    MYSAWH_ASSIGN_OR_RETURN(
        result.test_regression,
        ComputeRegressionMetrics(result.test.labels(), test_preds));
  }

  // With telemetry on and a tree model, record the held-out learning curve
  // in the paper's headline metric (AUC for classification, MAPE for
  // regression) — the trainer's stream only carries the objective loss.
  if (TelemetryEnabled() && result.gbt_model() != nullptr) {
    TelemetryScope final_scope("final");
    MYSAWH_ASSIGN_OR_RETURN(std::vector<std::vector<double>> stages,
                            result.gbt_model()->PredictStaged(result.test, 1));
    TelemetryStream eval = Telemetry::Global().StartStream("eval");
    if (eval.active()) {
      const char* metric = result.is_classification ? "auc" : "mape";
      std::ostringstream header;
      header << "\"metric\":\"" << metric << "\",\"rows\":"
             << result.test.num_rows() << ",\"stages\":" << stages.size();
      eval.Line("header", header.str());
      for (size_t stage = 0; stage < stages.size(); ++stage) {
        double value = std::numeric_limits<double>::quiet_NaN();
        if (result.is_classification) {
          Result<double> auc = RocAuc(result.test.labels(), stages[stage]);
          if (auc.ok()) value = *auc;
        } else {
          Result<RegressionMetrics> m =
              ComputeRegressionMetrics(result.test.labels(), stages[stage]);
          if (m.ok()) value = m->mape;
        }
        std::ostringstream line;
        line << "\"round\":" << stage << ",\"value\":"
             << TelemetryDouble(value);
        eval.Line("eval", line.str());
      }
      eval.Finish();
    }
  }
  return result;
}

Result<ExperimentResult> RunExperiment(const Dataset& samples, Outcome outcome,
                                       Approach approach, bool with_fi,
                                       const gbt::GbtParams& params,
                                       const EvalProtocol& protocol) {
  ModelFamilyConfig config;
  config.family = ModelFamily::kGbt;
  config.gbt = params;
  return RunExperiment(samples, outcome, approach, with_fi, config, protocol);
}

Result<ExperimentResult> RunExperiment(const Dataset& samples, Outcome outcome,
                                       Approach approach, bool with_fi,
                                       const EvalProtocol& protocol) {
  return RunExperiment(samples, outcome, approach, with_fi,
                       DefaultGbtParams(outcome, approach), protocol);
}

}  // namespace mysawh::core
