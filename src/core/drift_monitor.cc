#include "core/drift_monitor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "core/audit_log.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/monitor.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace mysawh::core {
namespace {

/// Proportions are clamped away from zero before the PSI log-ratio, the
/// standard guard that keeps an empty bin from producing an infinite
/// index.
constexpr double kPsiEpsilon = 1e-6;

std::atomic<bool> g_drift_enabled{false};

double Clamp(double p) { return p < kPsiEpsilon ? kPsiEpsilon : p; }

/// Bin index of one present value: the first edge at or above it, the
/// overflow bin otherwise. Edges are ascending, bins = edges.size() + 1.
size_t BinOf(const std::vector<double>& edges, double value) {
  const auto it = std::lower_bound(edges.begin(), edges.end(), value);
  return static_cast<size_t>(it - edges.begin());
}

/// PSI + KS from precomputed bin counts (`num_bins` = the baseline's bin
/// count, counts over present values only). The shared tail of the
/// strided single-column path and the fused row-major window sweep.
FeatureDriftStat StatFromCounts(const FeatureBaseline& base,
                                const int64_t* counts, int64_t missing,
                                int64_t rows) {
  FeatureDriftStat stat;
  stat.name = base.name;
  stat.rows = rows;
  if (rows == 0 || base.rows == 0) return stat;
  const size_t num_bins = std::max<size_t>(base.expected.size(), 1);
  const auto total = static_cast<double>(rows);
  const int64_t present = stat.rows - missing;
  stat.missing_actual = static_cast<double>(missing) / total;

  // PSI over num_bins + 1 components: each value bin scaled by the
  // present fraction, plus the missing bin, so missingness shift scores
  // exactly like value shift.
  double psi = 0.0;
  for (size_t b = 0; b < num_bins; ++b) {
    const double expected_present =
        b < base.expected.size() ? base.expected[b] : 0.0;
    const double e = Clamp(expected_present * (1.0 - base.missing_expected));
    const double a = Clamp(static_cast<double>(counts[b]) / total);
    psi += (a - e) * std::log(a / e);
  }
  {
    const double e = Clamp(base.missing_expected);
    const double a = Clamp(stat.missing_actual);
    psi += (a - e) * std::log(a / e);
  }
  stat.psi = psi;

  // KS: the maximum ECDF gap at the bin edges, present values only.
  if (!base.edges.empty() && present > 0) {
    double cum_expected = 0.0;
    double cum_actual = 0.0;
    double ks = 0.0;
    for (size_t b = 0; b + 1 < num_bins; ++b) {
      cum_expected += b < base.expected.size() ? base.expected[b] : 0.0;
      cum_actual +=
          static_cast<double>(counts[b]) / static_cast<double>(present);
      ks = std::max(ks, std::fabs(cum_expected - cum_actual));
    }
    stat.ks = ks;
  }
  return stat;
}

/// PSI + KS of one observed strided column against one baseline feature.
/// The stride lets callers evaluate row-major data in place.
FeatureDriftStat ComputeFeatureDriftStrided(const FeatureBaseline& base,
                                            const double* values,
                                            int64_t rows, int64_t stride) {
  if (rows == 0 || base.rows == 0) {
    return StatFromCounts(base, nullptr, 0, rows);
  }
  const size_t num_bins = std::max<size_t>(base.expected.size(), 1);
  std::vector<int64_t> counts(num_bins, 0);
  int64_t missing = 0;
  const double* edges = base.edges.data();
  const size_t num_edges = base.edges.size();
  for (int64_t r = 0; r < rows; ++r) {
    const double v = values[r * stride];
    if (std::isnan(v)) {
      ++missing;
      continue;
    }
    // Branchless lower_bound: the bin index is the number of edges
    // strictly below the value. Edge counts are single digits, so the
    // linear scan vectorizes and beats a binary search.
    size_t bin = 0;
    for (size_t j = 0; j < num_edges; ++j) bin += edges[j] < v ? 1 : 0;
    if (bin >= num_bins) bin = num_bins - 1;
    ++counts[bin];
  }
  return StatFromCounts(base, counts.data(), missing, rows);
}

FeatureDriftStat ComputeFeatureDrift(const FeatureBaseline& base,
                                     const std::vector<double>& values) {
  return ComputeFeatureDriftStrided(base, values.data(),
                                    static_cast<int64_t>(values.size()), 1);
}

/// Builds the baseline of one column: equal-frequency edges over the
/// present values, deduplicated (ties collapse bins), then the expected
/// proportions by re-binning the same values.
FeatureBaseline BuildFeatureBaseline(const std::string& name,
                                     const std::vector<double>& values,
                                     int num_bins) {
  FeatureBaseline base;
  base.name = name;
  base.rows = static_cast<int64_t>(values.size());
  std::vector<double> present;
  present.reserve(values.size());
  for (const double v : values) {
    if (!std::isnan(v)) present.push_back(v);
  }
  base.missing_expected =
      base.rows == 0
          ? 0.0
          : static_cast<double>(base.rows -
                                static_cast<int64_t>(present.size())) /
                static_cast<double>(base.rows);
  if (present.empty()) return base;  // All-missing: zero edges, no bins.

  std::sort(present.begin(), present.end());
  const size_t n = present.size();
  for (int k = 1; k < num_bins; ++k) {
    const size_t idx = (static_cast<size_t>(k) * n) / num_bins;
    const double edge = present[std::min(idx, n - 1)];
    if (base.edges.empty() || edge > base.edges.back()) {
      base.edges.push_back(edge);
    }
  }
  base.expected.assign(base.edges.size() + 1, 0.0);
  for (const double v : present) {
    base.expected[BinOf(base.edges, v)] += 1.0;
  }
  for (double& p : base.expected) p /= static_cast<double>(n);
  return base;
}

/// Builds a window report from per-feature stats (baseline order, then
/// the prediction stat). The argmax and threshold logic runs serially in
/// a fixed order, so stats computed in parallel assemble to the same
/// report as stats computed inline.
DriftReport AssembleReport(std::vector<FeatureDriftStat> features,
                           FeatureDriftStat prediction, bool has_prediction,
                           const DriftThresholds& thresholds, int64_t rows) {
  DriftReport report;
  report.rows = rows;
  const auto consider = [&](const FeatureDriftStat& stat) {
    if (report.max_psi_feature.empty() || stat.psi > report.max_psi) {
      report.max_psi = stat.psi;
      report.max_psi_feature = stat.name;
    }
    if (report.max_ks_feature.empty() || stat.ks > report.max_ks) {
      report.max_ks = stat.ks;
      report.max_ks_feature = stat.name;
    }
    if (stat.psi > thresholds.psi || stat.ks > thresholds.ks) {
      report.alerts.push_back(stat.name);
    }
  };
  report.features = std::move(features);
  for (const FeatureDriftStat& stat : report.features) consider(stat);
  report.prediction = std::move(prediction);
  if (has_prediction) consider(report.prediction);
  return report;
}

/// Shared core of EvaluateDrift and the streaming window: column-major
/// values, one column per baseline feature.
DriftReport EvaluateDriftColumns(const DriftBaseline& baseline,
                                 const std::vector<std::vector<double>>& cols,
                                 const std::vector<double>& preds,
                                 const DriftThresholds& thresholds,
                                 int64_t rows) {
  std::vector<FeatureDriftStat> stats;
  stats.reserve(baseline.features.size());
  for (size_t f = 0; f < baseline.features.size(); ++f) {
    stats.push_back(ComputeFeatureDrift(baseline.features[f], cols[f]));
  }
  FeatureDriftStat prediction;
  const bool has_prediction = !preds.empty() && baseline.prediction.rows > 0;
  if (has_prediction) {
    prediction = ComputeFeatureDrift(baseline.prediction, preds);
  } else {
    prediction.name = baseline.prediction.name.empty()
                          ? "__prediction__"
                          : baseline.prediction.name;
  }
  return AssembleReport(std::move(stats), std::move(prediction),
                        has_prediction, thresholds, rows);
}

std::string FeatureBaselineJson(const FeatureBaseline& base) {
  std::string out = "{\"name\":\"";
  out += TelemetryJsonEscape(base.name);
  out += "\",\"rows\":";
  out += std::to_string(base.rows);
  out += ",\"missing\":";
  out += TelemetryDouble(base.missing_expected);
  out += ",\"edges\":[";
  for (size_t i = 0; i < base.edges.size(); ++i) {
    if (i > 0) out += ',';
    out += TelemetryDouble(base.edges[i]);
  }
  out += "],\"expected\":[";
  for (size_t i = 0; i < base.expected.size(); ++i) {
    if (i > 0) out += ',';
    out += TelemetryDouble(base.expected[i]);
  }
  out += "]}";
  return out;
}

Result<FeatureBaseline> ParseFeatureBaseline(const JsonValue& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("drift baseline: feature is not an object");
  }
  FeatureBaseline base;
  const JsonValue* name = value.Find("name");
  if (name == nullptr || !name->is_string()) {
    return Status::InvalidArgument("drift baseline: feature without a name");
  }
  base.name = name->string_value();
  const JsonValue* rows = value.Find("rows");
  if (rows == nullptr || !rows->is_number()) {
    return Status::InvalidArgument("drift baseline: feature without rows");
  }
  base.rows = static_cast<int64_t>(rows->number_value());
  base.missing_expected = value.NumberOr("missing", 0.0);
  const auto read_array = [&](const char* key,
                              std::vector<double>& out) -> Status {
    const JsonValue* array = value.Find(key);
    if (array == nullptr || !array->is_array()) {
      return Status::InvalidArgument(std::string("drift baseline: feature ") +
                                     base.name + " lacks array " + key);
    }
    for (const JsonValue& item : array->array_items()) {
      out.push_back(item.is_null() ? std::nan("") : item.number_value());
    }
    return Status::Ok();
  };
  MYSAWH_RETURN_NOT_OK(read_array("edges", base.edges));
  MYSAWH_RETURN_NOT_OK(read_array("expected", base.expected));
  if (!base.expected.empty() &&
      base.expected.size() != base.edges.size() + 1) {
    return Status::DataLoss("drift baseline: feature " + base.name + " has " +
                            std::to_string(base.expected.size()) +
                            " proportions for " +
                            std::to_string(base.edges.size()) + " edges");
  }
  for (size_t i = 1; i < base.edges.size(); ++i) {
    if (!(base.edges[i] > base.edges[i - 1])) {
      return Status::DataLoss("drift baseline: feature " + base.name +
                              " edges are not ascending");
    }
  }
  return base;
}

std::string FeatureDriftStatJson(const FeatureDriftStat& stat) {
  std::string out = "{\"name\":\"";
  out += TelemetryJsonEscape(stat.name);
  out += "\",\"psi\":";
  out += TelemetryDouble(stat.psi);
  out += ",\"ks\":";
  out += TelemetryDouble(stat.ks);
  out += ",\"missing\":";
  out += TelemetryDouble(stat.missing_actual);
  out += ",\"rows\":";
  out += std::to_string(stat.rows);
  out += '}';
  return out;
}

}  // namespace

Result<DriftBaseline> BuildDriftBaseline(const Dataset& train,
                                         const std::vector<double>& train_preds,
                                         int num_bins) {
  if (train.num_rows() == 0) {
    return Status::InvalidArgument("BuildDriftBaseline: empty training data");
  }
  if (num_bins < 2) {
    return Status::InvalidArgument("BuildDriftBaseline: num_bins must be >= 2");
  }
  if (!train_preds.empty() &&
      static_cast<int64_t>(train_preds.size()) != train.num_rows()) {
    return Status::InvalidArgument(
        "BuildDriftBaseline: prediction count != row count");
  }
  DriftBaseline baseline;
  baseline.num_bins = num_bins;
  std::vector<double> column(static_cast<size_t>(train.num_rows()));
  for (int64_t f = 0; f < train.num_features(); ++f) {
    for (int64_t r = 0; r < train.num_rows(); ++r) {
      column[static_cast<size_t>(r)] = train.At(r, f);
    }
    baseline.features.push_back(BuildFeatureBaseline(
        train.feature_names()[static_cast<size_t>(f)], column, num_bins));
  }
  if (train_preds.empty()) {
    baseline.prediction.name = "__prediction__";
  } else {
    baseline.prediction =
        BuildFeatureBaseline("__prediction__", train_preds, num_bins);
  }
  return baseline;
}

Result<DriftReport> EvaluateDrift(const DriftBaseline& baseline,
                                  const Dataset& data,
                                  const std::vector<double>& preds,
                                  const DriftThresholds& thresholds) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("EvaluateDrift: empty data");
  }
  if (data.num_features() !=
      static_cast<int64_t>(baseline.features.size())) {
    return Status::InvalidArgument(
        "EvaluateDrift: dataset width " + std::to_string(data.num_features()) +
        " != baseline width " + std::to_string(baseline.features.size()));
  }
  if (!preds.empty() &&
      static_cast<int64_t>(preds.size()) != data.num_rows()) {
    return Status::InvalidArgument(
        "EvaluateDrift: prediction count != row count");
  }
  std::vector<std::vector<double>> cols(baseline.features.size());
  for (size_t f = 0; f < cols.size(); ++f) {
    cols[f].resize(static_cast<size_t>(data.num_rows()));
    for (int64_t r = 0; r < data.num_rows(); ++r) {
      cols[f][static_cast<size_t>(r)] = data.At(r, static_cast<int64_t>(f));
    }
  }
  return EvaluateDriftColumns(baseline, cols, preds, thresholds,
                              data.num_rows());
}

std::string DriftBaselineJson(const DriftBaseline& baseline) {
  std::string out = "{\"schema\":\"mysawh-drift-baseline v1\",\"num_bins\":";
  out += std::to_string(baseline.num_bins);
  out += ",\"features\":[";
  for (size_t f = 0; f < baseline.features.size(); ++f) {
    if (f > 0) out += ',';
    out += FeatureBaselineJson(baseline.features[f]);
  }
  out += "],\"prediction\":";
  out += FeatureBaselineJson(baseline.prediction);
  out += '}';
  return out;
}

Result<DriftBaseline> ParseDriftBaseline(const std::string& json) {
  MYSAWH_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json));
  if (!root.is_object()) {
    return Status::InvalidArgument("drift baseline: not a JSON object");
  }
  if (root.StringOr("schema", "") != "mysawh-drift-baseline v1") {
    return Status::InvalidArgument(
        "drift baseline: missing or unknown schema (want "
        "\"mysawh-drift-baseline v1\")");
  }
  DriftBaseline baseline;
  baseline.num_bins = static_cast<int>(root.NumberOr("num_bins", 10));
  if (baseline.num_bins < 2) {
    return Status::DataLoss("drift baseline: num_bins < 2");
  }
  const JsonValue* features = root.Find("features");
  if (features == nullptr || !features->is_array()) {
    return Status::InvalidArgument("drift baseline: missing features array");
  }
  for (const JsonValue& item : features->array_items()) {
    MYSAWH_ASSIGN_OR_RETURN(FeatureBaseline base, ParseFeatureBaseline(item));
    baseline.features.push_back(std::move(base));
  }
  if (baseline.features.empty()) {
    return Status::DataLoss("drift baseline: zero features");
  }
  const JsonValue* prediction = root.Find("prediction");
  if (prediction != nullptr) {
    MYSAWH_ASSIGN_OR_RETURN(baseline.prediction,
                            ParseFeatureBaseline(*prediction));
  } else {
    baseline.prediction.name = "__prediction__";
  }
  return baseline;
}

std::string DriftReportJson(const DriftReport& report) {
  std::string out = "{\"rows\":";
  out += std::to_string(report.rows);
  out += ",\"max_psi\":";
  out += TelemetryDouble(report.max_psi);
  out += ",\"max_psi_feature\":\"";
  out += TelemetryJsonEscape(report.max_psi_feature);
  out += "\",\"max_ks\":";
  out += TelemetryDouble(report.max_ks);
  out += ",\"max_ks_feature\":\"";
  out += TelemetryJsonEscape(report.max_ks_feature);
  out += "\",\"alerts\":[";
  for (size_t i = 0; i < report.alerts.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += TelemetryJsonEscape(report.alerts[i]);
    out += '"';
  }
  out += "],\"prediction\":";
  out += FeatureDriftStatJson(report.prediction);
  out += ",\"features\":[";
  for (size_t f = 0; f < report.features.size(); ++f) {
    if (f > 0) out += ',';
    out += FeatureDriftStatJson(report.features[f]);
  }
  out += "]}";
  return out;
}

bool DriftMonitoringEnabled() {
  return g_drift_enabled.load(std::memory_order_relaxed);
}

DriftMonitorRuntime& DriftMonitorRuntime::Global() {
  static DriftMonitorRuntime* const runtime = new DriftMonitorRuntime();
  return *runtime;
}

Status DriftMonitorRuntime::Configure(DriftBaseline baseline,
                                      DriftMonitorOptions options) {
  if (baseline.features.empty()) {
    return Status::InvalidArgument("drift monitor: empty baseline");
  }
  if (options.window < 1) {
    return Status::InvalidArgument("drift monitor: window must be >= 1");
  }
  if (options.sample_rate < 1) {
    return Status::InvalidArgument("drift monitor: sample rate must be >= 1");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  baseline_ = std::move(baseline);
  layout_ = BinLayout();
  size_t max_edges = 0;
  for (const FeatureBaseline& base : baseline_.features) {
    max_edges = std::max(max_edges, base.edges.size());
    const auto nbins =
        static_cast<int64_t>(std::max<size_t>(base.expected.size(), 1));
    layout_.nbins.push_back(nbins);
    layout_.offset.push_back(layout_.total_bins);
    layout_.total_bins += nbins;
  }
  // Strictly greater than max_edges: the binary search's log2(pad) steps
  // reach ranks up to pad - 1, so at least one +inf sentinel slot must
  // absorb the "every real edge is below v" case.
  layout_.pad = 1;
  while (layout_.pad <= static_cast<int64_t>(max_edges)) layout_.pad <<= 1;
  layout_.padded_edges.assign(
      baseline_.features.size() * static_cast<size_t>(layout_.pad),
      std::numeric_limits<double>::infinity());
  for (size_t f = 0; f < baseline_.features.size(); ++f) {
    std::copy(baseline_.features[f].edges.begin(),
              baseline_.features[f].edges.end(),
              layout_.padded_edges.begin() +
                  static_cast<int64_t>(f) * layout_.pad);
  }
  options_ = options;
  window_rows_.clear();
  window_preds_.clear();
  buffered_ = 0;
  alert_latched_ = false;
  has_report_ = false;
  g_drift_enabled.store(true, std::memory_order_relaxed);
  return Status::Ok();
}

void DriftMonitorRuntime::Disable() {
  g_drift_enabled.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  window_rows_.clear();
  window_preds_.clear();
  buffered_ = 0;
  alert_latched_ = false;
}

void DriftMonitorRuntime::ObserveBatch(const Dataset& data,
                                       const std::vector<double>& preds) {
  if (!DriftMonitoringEnabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto width = static_cast<int64_t>(baseline_.features.size());
  if (data.num_features() != width ||
      static_cast<int64_t>(preds.size()) != data.num_rows()) {
    return;  // A different model's batch: not this monitor's population.
  }
  const int64_t n = data.num_rows();
  const int64_t window = options_.window;
  if (options_.sample_rate > 1) {
    ObserveSampledLocked(data, preds, width);
    return;
  }
  std::vector<WindowRef> ready;
  int64_t r = 0;
  bool buffer_pending = false;
  if (buffered_ > 0) {
    // Top up the partial window carried over from the previous batch.
    const int64_t take = std::min(window - buffered_, n);
    const double* first = data.row(0);
    window_rows_.insert(window_rows_.end(), first, first + take * width);
    window_preds_.insert(window_preds_.end(), preds.begin(),
                         preds.begin() + take);
    buffered_ += take;
    r = take;
    if (buffered_ >= window) {
      ready.push_back({window_rows_.data(), window_preds_.data(), window});
      buffer_pending = true;
    }
  }
  // Whole windows inside the batch evaluate in place: rows are contiguous
  // in the dataset, so the steady-state path copies nothing.
  for (; n - r >= window; r += window) {
    ready.push_back({data.row(r), preds.data() + r, window});
  }
  if (!ready.empty()) EvaluateWindowsLocked(ready);
  if (buffer_pending) {
    window_rows_.clear();
    window_preds_.clear();
    buffered_ = 0;
  }
  if (r < n) {  // Carry the tail into the next window.
    const double* tail = data.row(r);
    window_rows_.insert(window_rows_.end(), tail, tail + (n - r) * width);
    window_preds_.insert(window_preds_.end(), preds.begin() + r, preds.end());
    buffered_ += n - r;
  }
}

void DriftMonitorRuntime::ObserveSampledLocked(const Dataset& data,
                                               const std::vector<double>& preds,
                                               int64_t width) {
  // The sampling sweep — a leading-features hash per row — is the only
  // work paid for every row. It chunk-parallelizes on multicore machines
  // and admits an identical population for any worker count: chunk
  // boundaries are fixed and chunks merge in index order.
  constexpr int64_t kChunk = 1024;
  const int64_t n = data.num_rows();
  const int64_t num_chunks = (n + kChunk - 1) / kChunk;
  std::vector<std::vector<int64_t>> picked(static_cast<size_t>(num_chunks));
  const int64_t rate = options_.sample_rate;
  DefaultPool().ParallelForChunks(
      n, kChunk, [&](int64_t chunk, int64_t begin, int64_t end) {
        std::vector<int64_t>& out = picked[static_cast<size_t>(chunk)];
        for (int64_t r = begin; r < end; ++r) {
          if (AuditSampled(AuditSampleKey(data.row(r), width), rate)) {
            out.push_back(r);
          }
        }
      });
  const int64_t window = options_.window;
  for (const std::vector<int64_t>& chunk : picked) {
    for (const int64_t r : chunk) {
      const double* row = data.row(r);
      window_rows_.insert(window_rows_.end(), row, row + width);
      window_preds_.push_back(preds[static_cast<size_t>(r)]);
      if (++buffered_ == window) {
        const std::vector<WindowRef> ready = {
            {window_rows_.data(), window_preds_.data(), window}};
        EvaluateWindowsLocked(ready);
        window_rows_.clear();
        window_preds_.clear();
        buffered_ = 0;
      }
    }
  }
}

void DriftMonitorRuntime::Flush() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (buffered_ > 0) {
      const std::vector<WindowRef> ready = {
          {window_rows_.data(), window_preds_.data(), buffered_}};
      EvaluateWindowsLocked(ready);
      window_rows_.clear();
      window_preds_.clear();
      buffered_ = 0;
    }
  }
  g_drift_enabled.store(false, std::memory_order_relaxed);
}

std::string DriftMonitorRuntime::LastReportJson() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Serialized on demand: rendering round-trip-exact doubles per window
  // would cost more than evaluating the window.
  return has_report_ ? DriftReportJson(last_report_) : std::string();
}

void DriftMonitorRuntime::EvaluateWindowsLocked(
    const std::vector<WindowRef>& windows) {
  const auto width = static_cast<int64_t>(baseline_.features.size());
  const bool has_prediction = baseline_.prediction.rows > 0;
  for (const WindowRef& win : windows) {
    // Fused row-major counting: one sequential sweep bins every feature
    // of a row at once. The per-feature strided alternative re-reads the
    // window `width` times, paying a cache miss per value once the window
    // outgrows L1. Rows are chunked for multicore machines; integer bin
    // counts merge exactly for any partition, so the report is identical
    // for any worker count (and the chunks run inline on a single core).
    constexpr int64_t kRowChunk = 128;
    const auto num_chunks =
        static_cast<size_t>((win.count + kRowChunk - 1) / kRowChunk);
    std::vector<std::vector<int64_t>> counts(num_chunks);
    std::vector<std::vector<int64_t>> missing(num_chunks);
    DefaultPool().ParallelForChunks(
        win.count, kRowChunk, [&](int64_t chunk, int64_t begin, int64_t end) {
          std::vector<int64_t>& c = counts[static_cast<size_t>(chunk)];
          std::vector<int64_t>& m = missing[static_cast<size_t>(chunk)];
          c.assign(static_cast<size_t>(layout_.total_bins), 0);
          m.assign(static_cast<size_t>(width), 0);
          const double* padded = layout_.padded_edges.data();
          const int64_t* nbins = layout_.nbins.data();
          const int64_t* offset = layout_.offset.data();
          const int64_t pad = layout_.pad;
          for (int64_t r = begin; r < end; ++r) {
            const double* row = win.rows + r * width;
            const double* edges = padded;
            for (int64_t f = 0; f < width; ++f, edges += pad) {
              const double v = row[f];
              if (std::isnan(v)) {
                ++m[static_cast<size_t>(f)];
                continue;
              }
              // Branchless binary search over the padded edges for the
              // count of edges strictly below the value (+inf padding
              // never is): log2(pad) compares, no data-dependent branch.
              int64_t bin = 0;
              for (int64_t step = pad >> 1; step > 0; step >>= 1) {
                bin += edges[bin + step - 1] < v ? step : 0;
              }
              if (bin >= nbins[f]) bin = nbins[f] - 1;
              ++c[static_cast<size_t>(offset[f] + bin)];
            }
          }
        });
    for (size_t chunk = 1; chunk < num_chunks; ++chunk) {
      for (size_t i = 0; i < counts[0].size(); ++i) {
        counts[0][i] += counts[chunk][i];
      }
      for (size_t f = 0; f < missing[0].size(); ++f) {
        missing[0][f] += missing[chunk][f];
      }
    }
    std::vector<FeatureDriftStat> stats(static_cast<size_t>(width));
    for (int64_t f = 0; f < width; ++f) {
      stats[static_cast<size_t>(f)] = StatFromCounts(
          baseline_.features[static_cast<size_t>(f)],
          counts[0].data() + layout_.offset[static_cast<size_t>(f)],
          missing[0][static_cast<size_t>(f)], win.count);
    }
    FeatureDriftStat prediction;
    if (has_prediction) {
      prediction = ComputeFeatureDriftStrided(baseline_.prediction, win.preds,
                                              win.count, 1);
    } else {
      prediction.name = baseline_.prediction.name.empty()
                            ? "__prediction__"
                            : baseline_.prediction.name;
    }
    // Reports assemble and latch strictly in window order.
    ProcessReportLocked(AssembleReport(std::move(stats), std::move(prediction),
                                       has_prediction, options_.thresholds,
                                       win.count));
  }
}

void DriftMonitorRuntime::ProcessReportLocked(DriftReport report) {
  windows_.fetch_add(1, std::memory_order_relaxed);
  static Counter* const windows_counter =
      MetricsRegistry::Global().GetCounter("drift.windows");
  windows_counter->Increment();
  last_report_ = std::move(report);
  has_report_ = true;
  const DriftReport& current = last_report_;
  const int64_t rows = current.rows;

  if (current.alerts.empty()) {
    alert_latched_ = false;  // A clean window re-arms the latch.
    return;
  }
  if (alert_latched_) return;  // One event per excursion.
  alert_latched_ = true;
  alerts_.fetch_add(1, std::memory_order_relaxed);
  static Counter* const alerts_counter =
      MetricsRegistry::Global().GetCounter("drift.alerts");
  alerts_counter->Increment();

  std::ostringstream event;
  event << "{\"type\":\"drift\",\"window_rows\":" << rows
        << ",\"max_psi\":" << TelemetryDouble(current.max_psi)
        << ",\"max_psi_feature\":\""
        << TelemetryJsonEscape(current.max_psi_feature)
        << "\",\"max_ks\":" << TelemetryDouble(current.max_ks)
        << ",\"max_ks_feature\":\""
        << TelemetryJsonEscape(current.max_ks_feature) << "\",\"alerts\":[";
  for (size_t i = 0; i < current.alerts.size(); ++i) {
    event << (i == 0 ? "" : ",") << "\"" << TelemetryJsonEscape(current.alerts[i])
          << "\"";
  }
  event << "]}";
  if (Monitor* monitor = Monitor::Current()) {
    monitor->AppendEvent(event.str());
  }
  if (TracingEnabled()) {
    TraceEvent trace_event;
    trace_event.name = "drift.alert";
    trace_event.cat = "monitor";
    trace_event.ts_us = Tracer::Global().NowMicros();
    trace_event.dur_us = 0;
    trace_event.args = "\"alerts\":" + std::to_string(current.alerts.size()) +
                       ",\"window_rows\":" + std::to_string(rows);
    Tracer::Global().Record(std::move(trace_event));
  }
}

}  // namespace mysawh::core
