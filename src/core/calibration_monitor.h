#ifndef MYSAWH_CORE_CALIBRATION_MONITOR_H_
#define MYSAWH_CORE_CALIBRATION_MONITOR_H_

#include <string>
#include <vector>

#include "core/metrics.h"
#include "util/status.h"

namespace mysawh::core {

/// Calibration tracking for the model-quality observability layer (see
/// docs/observability.md), layered on the core/metrics.h primitives
/// (`CalibrationBin`, `ComputeCalibrationBins`, `BrierScore`): reliability
/// bins + Brier + ECE for the Falls classifier, MAE quantiles for the
/// regression outcomes (SPPB/QoL). All statistics are pure functions of
/// (labels, predictions) — byte-identical JSON for identical inputs — and
/// are surfaced through ppm-scaled registry gauges plus the run
/// manifest's `calibration` block. Never written into REPORT.md, so
/// reports stay bit-identical with or without calibration tracking.

/// Reliability diagram + scalar calibration scores for a binary
/// classifier. `bins` holds the non-empty equal-width bins in bin order
/// (as ComputeCalibrationBins returns them); ECE is the count-weighted
/// mean |mean_predicted - observed_rate| over those bins.
struct CalibrationReport {
  int64_t rows = 0;  ///< Rows scored (NaN labels/predictions skipped).
  int num_bins = 10;
  double brier = 0.0;
  double ece = 0.0;
  std::vector<CalibrationBin> bins;
};

/// Computes the reliability table, Brier, and ECE. Rows where either side
/// is NaN are skipped before delegating to the metrics primitives, which
/// enforce 0/1 labels and [0, 1] probabilities. Fails on size mismatch,
/// num_bins < 1, or zero usable rows.
Result<CalibrationReport> ComputeCalibration(const std::vector<double>& labels,
                                             const std::vector<double>& preds,
                                             int num_bins = 10);

/// Absolute-error quantiles for regression outcomes. Quantile rank is
/// ceil(q * n), 1-based, over the sorted |label - prediction| values —
/// p50/p90/p99 are therefore exact order statistics, not interpolated.
struct ErrorQuantiles {
  int64_t rows = 0;
  double mae = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max_err = 0.0;
};

/// Computes MAE and the p50/p90/p99/max absolute-error quantiles. Rows
/// where either side is NaN are skipped; fails on size mismatch or zero
/// usable rows.
Result<ErrorQuantiles> ComputeErrorQuantiles(const std::vector<double>& labels,
                                             const std::vector<double>& preds);

/// Deterministic JSON objects (no trailing newline) for the manifest's
/// `calibration` block. Doubles use round-trip-exact shortest form.
std::string CalibrationJson(const CalibrationReport& report);
std::string ErrorQuantilesJson(const ErrorQuantiles& quantiles);

/// Publishes a report as registry gauges under
/// `calibration.<label>.{ece_ppm,brier_ppm,rows}` — gauges are int64, so
/// the unit-interval scores are scaled to parts-per-million.
void PublishCalibrationGauges(const std::string& label,
                              const CalibrationReport& report);
/// Publishes quantiles as `calibration.<label>.{mae_ppm,p90_ppm,rows}`.
void PublishErrorQuantileGauges(const std::string& label,
                                const ErrorQuantiles& quantiles);

}  // namespace mysawh::core

#endif  // MYSAWH_CORE_CALIBRATION_MONITOR_H_
