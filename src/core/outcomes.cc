#include "core/outcomes.h"

namespace mysawh::core {

const char* OutcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kQol:
      return "QoL";
    case Outcome::kSppb:
      return "SPPB";
    case Outcome::kFalls:
      return "Falls";
  }
  return "unknown";
}

Result<Outcome> ParseOutcome(const std::string& name) {
  if (name == "QoL") return Outcome::kQol;
  if (name == "SPPB") return Outcome::kSppb;
  if (name == "Falls") return Outcome::kFalls;
  return Status::InvalidArgument("unknown outcome: " + name);
}

bool IsClassification(Outcome outcome) { return outcome == Outcome::kFalls; }

double OutcomeLabel(const cohort::VisitOutcomes& visit, Outcome outcome) {
  switch (outcome) {
    case Outcome::kQol:
      return visit.qol;
    case Outcome::kSppb:
      return static_cast<double>(visit.sppb);
    case Outcome::kFalls:
      return visit.falls ? 1.0 : 0.0;
  }
  return 0.0;
}

}  // namespace mysawh::core
