#ifndef MYSAWH_CORE_STUDY_H_
#define MYSAWH_CORE_STUDY_H_

#include <map>
#include <string>

#include "cohort/cohort.h"
#include "core/data_profile.h"
#include "core/drift_monitor.h"
#include "core/evaluation.h"
#include "core/sample_builder.h"
#include "util/status.h"

namespace mysawh::core {

/// Configuration of a complete paper-style study run.
struct StudyConfig {
  cohort::CohortConfig cohort;
  SampleBuildOptions build;
  EvalProtocol protocol;
  /// Model family trained in every cell (kGbt reproduces the paper).
  ModelFamily model_family = ModelFamily::kGbt;
  /// Worker threads for the 12-cell grid; 0 picks the hardware count,
  /// 1 runs sequentially. Results are identical for any thread count:
  /// each cell derives its randomness solely from `protocol.seed`.
  int num_threads = 0;
  /// When non-empty, every finished cell persists its result into this
  /// directory (created if absent) as an atomically written, checksummed
  /// checkpoint file — see core/checkpoint.h.
  std::string checkpoint_dir;
  /// With `checkpoint_dir` set, cells whose checkpoint exists, verifies,
  /// and matches the configuration fingerprint are loaded instead of
  /// re-run; missing, corrupt, or mismatched checkpoints re-run (and are
  /// re-written). A resumed study's ToMarkdown() output is bit-identical
  /// to an uninterrupted run's.
  bool resume = false;
  /// Alert thresholds of the per-cell drift post-pass (train baseline vs
  /// test window; see core/drift_monitor.h). Like the data-quality
  /// profiles, the post-pass only feeds the manifest — never REPORT.md.
  DriftThresholds drift_thresholds;
  /// Equal-frequency bins of the drift baselines.
  int drift_bins = 10;
  /// Reliability bins of the calibration post-pass (Falls cells).
  int calibration_bins = 10;
};

/// Canonical fingerprint of the configuration fields that determine cell
/// results (cohort, sample building, protocol, model family — not thread
/// count or checkpoint settings). Stored inside every checkpoint so stale
/// checkpoints from a different configuration are never resumed.
std::string StudyFingerprint(const StudyConfig& config);

/// Key of one experiment cell in the study grid.
struct StudyCellKey {
  Outcome outcome = Outcome::kQol;
  Approach approach = Approach::kDataDriven;
  bool with_fi = false;

  bool operator<(const StudyCellKey& other) const {
    if (outcome != other.outcome) return outcome < other.outcome;
    if (approach != other.approach) return approach < other.approach;
    return with_fi < other.with_fi;
  }
};

/// Canonical "<Outcome>-<KD|DD>-fi<0|1>" label of a cell; used as the
/// trace span name (`study.cell/<label>`) and as the manifest timing key.
std::string StudyCellName(const StudyCellKey& key);

/// Wall/CPU cost of computing (or resuming) one study cell. Collected for
/// the run manifest only — ToMarkdown() never reads it, so a traced run's
/// REPORT.md stays bit-identical to an untraced one.
struct CellTiming {
  double wall_ms = 0.0;
  /// Thread CPU time of the cell body (CLOCK_THREAD_CPUTIME_ID); excludes
  /// work the cell fanned out to other pool workers.
  double cpu_ms = 0.0;
  /// True when the cell was loaded from a checkpoint instead of computed.
  bool resumed = false;
};

/// The complete result of a study: the paper's Fig 4 grid (3 outcomes x
/// {KD, DD} x {with, without FI}) plus dataset-level statistics.
struct StudyResult {
  std::map<StudyCellKey, ExperimentResult> cells;
  /// Per-cell cost, keyed like `cells` (see CellTiming).
  std::map<StudyCellKey, CellTiming> timings;
  /// Per-cell train/test data-quality profile, keyed like `cells`.
  /// Surfaced through the run manifest's `data_quality` block; ToMarkdown()
  /// never reads it, so REPORT.md is unaffected by profiling.
  std::map<StudyCellKey, DataQualityProfile> profiles;
  /// Per-cell drift report (train baseline vs test partition), rendered
  /// JSON, keyed like `cells`; the manifest's `drift` block. Resumed
  /// cells carry no partitions and so have no entry.
  std::map<StudyCellKey, std::string> drift_jsons;
  /// Per-cell calibration (Falls: reliability/Brier/ECE; regression: MAE
  /// quantiles), rendered JSON; the manifest's `calibration` block.
  std::map<StudyCellKey, std::string> calibration_jsons;
  int64_t total_candidates = 0;
  int64_t retained = 0;
  GapStats gap_stats;

  /// The cell lookup; fails when the grid is incomplete.
  Result<const ExperimentResult*> Cell(Outcome outcome, Approach approach,
                                       bool with_fi) const;

  /// Renders the whole study as a self-contained Markdown report
  /// (dataset summary + Fig 4-style tables), suitable for writing to a
  /// REPORT.md.
  std::string ToMarkdown() const;
};

/// Runs the full DD-vs-KD study: generates the cohort, builds the aligned
/// sample sets for each outcome, and evaluates all twelve grid cells with
/// the default per-cell hyperparameters. Cells run concurrently on a
/// thread pool sized by `config.num_threads`; the result is deterministic
/// regardless of parallelism.
Result<StudyResult> RunFullStudy(const StudyConfig& config);

}  // namespace mysawh::core

#endif  // MYSAWH_CORE_STUDY_H_
