#ifndef MYSAWH_CORE_RUN_MANIFEST_H_
#define MYSAWH_CORE_RUN_MANIFEST_H_

#include <string>

#include "core/study.h"

namespace mysawh::core {

/// Builds the run-manifest JSON for a finished study: what produced the
/// artifacts (source revision, configuration fingerprint, seed, model
/// family), what each grid cell cost (wall/CPU milliseconds, whether it
/// was resumed from a checkpoint), and the process metrics snapshot at the
/// time of the call.
///
/// The manifest is a sidecar: REPORT.md never embeds any of this, so a
/// traced/instrumented run's report stays bit-identical to a plain run's.
/// Schema is documented in docs/observability.md; the top-level "schema"
/// field is "mysawh-run-manifest v1".
std::string BuildRunManifestJson(const StudyConfig& config,
                                 const StudyResult& result);

/// Writes BuildRunManifestJson atomically to `path` (plain JSON, no
/// checksum envelope: manifests are for humans and external tools).
Status WriteRunManifest(const std::string& path, const StudyConfig& config,
                        const StudyResult& result);

}  // namespace mysawh::core

#endif  // MYSAWH_CORE_RUN_MANIFEST_H_
