#ifndef MYSAWH_CORE_AUDIT_LOG_H_
#define MYSAWH_CORE_AUDIT_LOG_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace mysawh::core {

/// The prediction audit log (`mysawh-audit v1`): a deterministically
/// sampled, checksummed record of what the model predicted — per sampled
/// row the full feature vector, a content fingerprint, the model
/// fingerprint, the prediction, and (when SHAP runs) the top-k
/// attributions. `mysawh audit-replay` re-runs logged rows through the
/// current model and cmp-asserts the outputs, making the log the first
/// concrete instance of ROADMAP item 4's event-log architecture: a
/// replayable stream of inference events.
///
/// Determinism: sampling is a pure function of the row's content (an
/// FNV-1a key over its leading features, see AuditSampleKey), never of
/// arrival order or thread, and records are content-sorted at
/// serialization — so a run with `--threads 8` writes a byte-identical
/// log to `--threads 1` (tests/gbt_determinism_test.cc holds this).

struct AuditOptions {
  /// Keep one row in `sample_rate` (by sample key); 1 keeps every row.
  int64_t sample_rate = 16;
  /// SHAP attributions kept per sampled row (largest |value| first).
  int top_k = 3;
};

/// Lane-parallel FNV-1a over the row's doubles as 8-byte words (NaNs hash
/// by the canonical quiet-NaN pattern). The per-record `fp` field and the
/// integrity check of the feature list.
uint64_t HashRow(const double* row, int64_t num_features);

/// Bit pattern of one value with every NaN payload collapsed to the
/// canonical quiet NaN: any NaN means "missing", and JSON cannot preserve
/// payloads across the round-trip anyway.
inline uint64_t CanonicalFeatureBits(double value) {
  uint64_t bits;
  __builtin_memcpy(&bits, &value, sizeof(bits));
  if ((bits & 0x7fffffffffffffffull) > 0x7ff0000000000000ull) {
    bits = 0x7ff8000000000000ull;
  }
  return bits;
}

/// Finalizer applied to the sample key before the modulo sampling test:
/// FNV's final multiply feeds low bits only from low bits, so `key % rate`
/// over a raw short-input FNV is visibly biased. The avalanche (splitmix64
/// tail) mixes every input bit into the low bits.
inline uint64_t KeyAvalanche(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h;
}

/// The sampling key: avalanched FNV-1a over the first min(4, num_features)
/// features. The sampling decision runs for EVERY predicted row, so the
/// key reads a bounded prefix (and is inline — the call is the predict
/// hook's innermost loop); the full-row fingerprint is only computed for
/// rows that pass. Still a pure function of row content — never of
/// arrival order — so sampling stays deterministic across thread counts.
/// The trade-off: rows identical in their leading features sample
/// together.
inline uint64_t AuditSampleKey(const double* row, int64_t num_features) {
  constexpr uint64_t kBasis = 14695981039346656037ull;
  constexpr uint64_t kPrime = 1099511628211ull;
  // Mirrors HashRow's lane structure for <= 4 words: lane f absorbs word
  // f, then the lanes fold in order (audit_log_test holds the identity
  // AuditSampleKey == KeyAvalanche(HashRow) over the prefix).
  uint64_t lanes[4] = {kBasis, kBasis ^ 0x9e3779b97f4a7c15ull,
                       kBasis ^ 0xc2b2ae3d27d4eb4full,
                       kBasis ^ 0x165667b19e3779f9ull};
  const int64_t n = num_features < 4 ? num_features : 4;
  for (int64_t f = 0; f < n; ++f) {
    lanes[f] = (lanes[f] ^ CanonicalFeatureBits(row[f])) * kPrime;
  }
  uint64_t hash = kBasis;
  for (const uint64_t lane : lanes) hash = (hash ^ lane) * kPrime;
  return KeyAvalanche(hash);
}

/// FNV-1a over raw bytes; `GbtModel::CompileFlat` fingerprints the
/// serialized model with this so every audit record names the exact model
/// that produced it.
uint64_t HashBytes(const void* data, size_t size);

/// True when the sample key selects the row at this sampling rate.
inline bool AuditSampled(uint64_t sample_key, int64_t sample_rate) {
  return sample_rate <= 1 ||
         (sample_key % static_cast<uint64_t>(sample_rate)) == 0;
}

/// One top-k SHAP attribution: feature index + value.
struct AuditShapEntry {
  int index = 0;
  double value = 0.0;
};

/// One logged inference event.
struct AuditRecord {
  std::string type;  ///< "predict" or "shap".
  uint64_t row_fp = 0;
  uint64_t model_fp = 0;
  std::vector<double> features;  ///< The full row; NaN = missing.
  double prediction = 0.0;       ///< Transformed prediction ("predict").
  std::vector<AuditShapEntry> shap;  ///< Top-k attributions ("shap").
};

/// True when the global log is armed — one relaxed atomic load, the only
/// cost `Predict`/`ShapBatch` pay on the common (disabled) path.
bool AuditEnabled();

/// The process-global audit collector. Hooked into `GbtModel::Predict`
/// and `TreeShap::ShapBatch` on the calling thread after the parallel
/// loops, so recording never perturbs the computation it observes.
class AuditLog {
 public:
  static AuditLog& Global();

  /// Arms the log with `options`, clearing previously buffered records.
  /// Fails when sample_rate < 1 or top_k < 1.
  Status Configure(AuditOptions options);
  /// Disarms; buffered records stay until the next Configure().
  void Disable();

  /// Records one batch of transformed predictions (sampled rows only).
  void RecordPredictBatch(uint64_t model_fp, const Dataset& data,
                          const std::vector<double>& predictions);
  /// Records one batch of SHAP rows; each sampled row keeps the top-k
  /// attributions by |value| (ties broken by feature index).
  void RecordShapBatch(uint64_t model_fp, const Dataset& data,
                       const std::vector<std::vector<double>>& shap_rows);

  int64_t record_count();

  /// The checksummed-envelope payload: a `mysawh-audit v1` header line
  /// followed by one JSON record per line, content-sorted. Deterministic
  /// for a given record population regardless of insertion order.
  std::string SerializePayload();

  /// WrapChecksummed(SerializePayload()) + atomic write.
  Status WriteToFile(const std::string& path);

 private:
  std::mutex mutex_;
  AuditOptions options_;
  /// Raw records; JSON rendering is deferred to SerializePayload() so the
  /// record path (inside `Predict`) never pays for double formatting.
  std::vector<AuditRecord> records_;
};

/// A parsed audit artifact.
struct AuditFile {
  int64_t sample_rate = 16;
  int top_k = 3;
  std::vector<AuditRecord> records;
};

/// Parses the unwrapped payload. DataLoss on a malformed header, a record
/// count mismatch, or an unparseable record line.
Result<AuditFile> ParseAuditPayload(const std::string& payload);

/// ReadFileChecksummed + ParseAuditPayload. Corrupt files surface as
/// DataLoss, never as crashes (the corruption-corpus test holds this).
Result<AuditFile> ReadAuditFile(const std::string& path);

}  // namespace mysawh::core

#endif  // MYSAWH_CORE_AUDIT_LOG_H_
