#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "util/string_util.h"

namespace mysawh::core {

std::string RegressionMetrics::ToString() const {
  std::ostringstream os;
  os << "mae=" << FormatDouble(mae, 4) << " rmse=" << FormatDouble(rmse, 4)
     << " 1-MAPE=" << FormatPercent(one_minus_mape, 1) << " (n=" << n << ")";
  return os.str();
}

Result<RegressionMetrics> ComputeRegressionMetrics(
    const std::vector<double>& labels,
    const std::vector<double>& predictions) {
  if (labels.size() != predictions.size()) {
    return Status::InvalidArgument("metrics inputs differ in length");
  }
  if (labels.empty()) {
    return Status::InvalidArgument("metrics need at least one sample");
  }
  RegressionMetrics m;
  m.n = static_cast<int64_t>(labels.size());
  double abs_sum = 0.0, sq_sum = 0.0, ape_sum = 0.0;
  int64_t ape_n = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const double err = labels[i] - predictions[i];
    abs_sum += std::abs(err);
    sq_sum += err * err;
    if (std::abs(labels[i]) > 1e-12) {
      ape_sum += std::abs(err / labels[i]);
      ++ape_n;
    } else {
      ++m.mape_skipped;
    }
  }
  m.mae = abs_sum / static_cast<double>(m.n);
  m.rmse = std::sqrt(sq_sum / static_cast<double>(m.n));
  m.mape = ape_n > 0 ? ape_sum / static_cast<double>(ape_n) : 0.0;
  m.one_minus_mape = 1.0 - m.mape;
  return m;
}

std::string ClassificationMetrics::ToString() const {
  std::ostringstream os;
  os << "acc=" << FormatPercent(accuracy, 1)
     << " P(T)=" << FormatPercent(precision_true, 1)
     << " P(F)=" << FormatPercent(precision_false, 1)
     << " R(T)=" << FormatPercent(recall_true, 1)
     << " R(F)=" << FormatPercent(recall_false, 1)
     << " F1(T)=" << FormatPercent(f1_true, 1)
     << " F1(F)=" << FormatPercent(f1_false, 1);
  return os.str();
}

Result<ClassificationMetrics> ComputeClassificationMetrics(
    const std::vector<double>& labels,
    const std::vector<double>& probabilities, double threshold) {
  if (labels.size() != probabilities.size()) {
    return Status::InvalidArgument("metrics inputs differ in length");
  }
  if (labels.empty()) {
    return Status::InvalidArgument("metrics need at least one sample");
  }
  ClassificationMetrics m;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] != 0.0 && labels[i] != 1.0) {
      return Status::InvalidArgument("classification labels must be 0 or 1");
    }
    const bool actual = labels[i] > 0.5;
    const bool predicted = probabilities[i] >= threshold;
    if (actual && predicted) ++m.tp;
    if (!actual && predicted) ++m.fp;
    if (!actual && !predicted) ++m.tn;
    if (actual && !predicted) ++m.fn;
  }
  const auto safe_div = [](double num, double den) {
    return den > 0.0 ? num / den : 0.0;
  };
  const double total = static_cast<double>(m.tp + m.fp + m.tn + m.fn);
  m.accuracy = safe_div(static_cast<double>(m.tp + m.tn), total);
  m.precision_true = safe_div(static_cast<double>(m.tp),
                              static_cast<double>(m.tp + m.fp));
  m.recall_true =
      safe_div(static_cast<double>(m.tp), static_cast<double>(m.tp + m.fn));
  m.precision_false = safe_div(static_cast<double>(m.tn),
                               static_cast<double>(m.tn + m.fn));
  m.recall_false =
      safe_div(static_cast<double>(m.tn), static_cast<double>(m.tn + m.fp));
  m.f1_true = safe_div(2.0 * m.precision_true * m.recall_true,
                       m.precision_true + m.recall_true);
  m.f1_false = safe_div(2.0 * m.precision_false * m.recall_false,
                        m.precision_false + m.recall_false);
  return m;
}

Result<double> BrierScore(const std::vector<double>& labels,
                          const std::vector<double>& probabilities) {
  if (labels.size() != probabilities.size()) {
    return Status::InvalidArgument("BrierScore inputs differ in length");
  }
  if (labels.empty()) {
    return Status::InvalidArgument("BrierScore needs at least one sample");
  }
  double total = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] != 0.0 && labels[i] != 1.0) {
      return Status::InvalidArgument("BrierScore labels must be 0 or 1");
    }
    const double d = probabilities[i] - labels[i];
    total += d * d;
  }
  return total / static_cast<double>(labels.size());
}

Result<std::vector<CalibrationBin>> ComputeCalibrationBins(
    const std::vector<double>& labels,
    const std::vector<double>& probabilities, int num_bins) {
  if (labels.size() != probabilities.size()) {
    return Status::InvalidArgument("calibration inputs differ in length");
  }
  if (labels.empty()) {
    return Status::InvalidArgument("calibration needs at least one sample");
  }
  if (num_bins < 1) {
    return Status::InvalidArgument("num_bins must be >= 1");
  }
  std::vector<double> pred_sum(static_cast<size_t>(num_bins), 0.0);
  std::vector<double> label_sum(static_cast<size_t>(num_bins), 0.0);
  std::vector<int64_t> count(static_cast<size_t>(num_bins), 0);
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] != 0.0 && labels[i] != 1.0) {
      return Status::InvalidArgument("calibration labels must be 0 or 1");
    }
    const double p = probabilities[i];
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("probabilities must be in [0, 1]");
    }
    auto bin = static_cast<size_t>(p * num_bins);
    bin = std::min(bin, static_cast<size_t>(num_bins) - 1);
    pred_sum[bin] += p;
    label_sum[bin] += labels[i];
    ++count[bin];
  }
  std::vector<CalibrationBin> bins;
  for (int b = 0; b < num_bins; ++b) {
    const auto bi = static_cast<size_t>(b);
    if (count[bi] == 0) continue;
    bins.push_back({pred_sum[bi] / static_cast<double>(count[bi]),
                    label_sum[bi] / static_cast<double>(count[bi]),
                    count[bi]});
  }
  return bins;
}

Result<double> RocAuc(const std::vector<double>& labels,
                      const std::vector<double>& scores) {
  if (labels.size() != scores.size()) {
    return Status::InvalidArgument("RocAuc inputs differ in length");
  }
  if (labels.empty()) {
    return Status::InvalidArgument("RocAuc needs at least one sample");
  }
  std::vector<size_t> order(labels.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  // Average ranks over tied score groups.
  std::vector<double> ranks(labels.size());
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    const double avg_rank = (static_cast<double>(i) +
                             static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  double rank_sum_pos = 0.0;
  int64_t num_pos = 0, num_neg = 0;
  for (size_t k = 0; k < labels.size(); ++k) {
    if (labels[k] == 1.0) {
      rank_sum_pos += ranks[k];
      ++num_pos;
    } else if (labels[k] == 0.0) {
      ++num_neg;
    } else {
      return Status::InvalidArgument("RocAuc labels must be 0 or 1");
    }
  }
  if (num_pos == 0 || num_neg == 0) {
    return Status::InvalidArgument("RocAuc needs both classes present");
  }
  const double u = rank_sum_pos -
                   static_cast<double>(num_pos) *
                       (static_cast<double>(num_pos) + 1.0) / 2.0;
  return u / (static_cast<double>(num_pos) * static_cast<double>(num_neg));
}

Result<std::vector<std::pair<int64_t, double>>> PerGroupMae(
    const std::vector<double>& labels, const std::vector<double>& predictions,
    const std::vector<int64_t>& patients) {
  if (labels.size() != predictions.size() ||
      labels.size() != patients.size()) {
    return Status::InvalidArgument("PerGroupMae inputs differ in length");
  }
  std::map<int64_t, std::pair<double, int64_t>> acc;  // sum, count
  for (size_t i = 0; i < labels.size(); ++i) {
    auto& entry = acc[patients[i]];
    entry.first += std::abs(labels[i] - predictions[i]);
    ++entry.second;
  }
  std::vector<std::pair<int64_t, double>> out;
  out.reserve(acc.size());
  for (const auto& [patient, entry] : acc) {
    out.emplace_back(patient, entry.first / static_cast<double>(entry.second));
  }
  return out;
}

}  // namespace mysawh::core
