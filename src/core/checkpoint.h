#ifndef MYSAWH_CORE_CHECKPOINT_H_
#define MYSAWH_CORE_CHECKPOINT_H_

#include <string>

#include "core/evaluation.h"
#include "util/status.h"

namespace mysawh::core {

/// Per-cell study checkpoints: each of RunFullStudy's twelve experiment
/// cells persists its result on completion, so a crashed or killed study
/// can resume without re-training the finished cells.
///
/// Layout: `<dir>/cell_<outcome>_<approach>_<fi0|fi1>.ckpt`, one file per
/// cell, each written atomically inside the checksummed artifact envelope
/// (util/file_io.h). A checkpoint stores the cell's metrics (hex-encoded
/// doubles, exact round-trip) plus the trained model; the train/test
/// partitions are NOT persisted — a resumed cell re-derives nothing the
/// final REPORT.md needs, so a resumed study renders a report bit-identical
/// to an uninterrupted run, but its resumed cells carry empty partitions.
///
/// Every checkpoint records a `fingerprint` of the study configuration;
/// LoadCellCheckpoint rejects checkpoints whose fingerprint differs
/// (FailedPrecondition), so resuming under changed settings silently
/// re-runs instead of mixing incompatible results.

/// Stable file name of one cell's checkpoint, e.g. "cell_qol_dd_fi1.ckpt".
std::string CheckpointFileName(Outcome outcome, Approach approach,
                               bool with_fi);

/// Serializes one cell result (metrics + model, versioned header).
std::string SerializeExperimentResult(const ExperimentResult& result,
                                      const std::string& fingerprint);

/// Inverse of SerializeExperimentResult. The returned result's train/test
/// datasets are empty. Fails with InvalidArgument on malformed text and
/// FailedPrecondition when `expected_fingerprint` differs.
Result<ExperimentResult> DeserializeExperimentResult(
    const std::string& text, const std::string& expected_fingerprint);

/// Writes `result`'s checkpoint into `dir` (which must exist),
/// atomically and checksummed. Fault sites: "study/cell_save" fails the
/// whole save (arm `from:K` to simulate a kill after K-1 cells), and the
/// per-syscall "checkpoint_write/{open,write,fsync,rename}" sites.
Status SaveCellCheckpoint(const std::string& dir,
                          const std::string& fingerprint,
                          const ExperimentResult& result);

/// Loads one cell's checkpoint from `dir`. NotFound when absent, DataLoss
/// when the file is corrupt, FailedPrecondition on fingerprint mismatch —
/// all of which a resuming study treats as "re-run this cell".
Result<ExperimentResult> LoadCellCheckpoint(const std::string& dir,
                                            const std::string& fingerprint,
                                            Outcome outcome, Approach approach,
                                            bool with_fi);

}  // namespace mysawh::core

#endif  // MYSAWH_CORE_CHECKPOINT_H_
