#include "core/fi.h"

namespace mysawh::core {

Result<double> ComputeFrailtyIndex(const std::vector<double>& deficits) {
  if (deficits.empty()) {
    return Status::InvalidArgument("FI needs at least one deficit variable");
  }
  double sum = 0.0;
  for (double d : deficits) {
    if (d < 0.0 || d > 1.0) {
      return Status::InvalidArgument("deficit codes must be in [0, 1]");
    }
    sum += d;
  }
  return sum / static_cast<double>(deficits.size());
}

Result<std::vector<double>> PatientFrailtyTrajectory(
    const cohort::PatientData& patient) {
  std::vector<double> out;
  out.reserve(patient.deficits_at_visit.size());
  for (const auto& deficits : patient.deficits_at_visit) {
    MYSAWH_ASSIGN_OR_RETURN(double fi, ComputeFrailtyIndex(deficits));
    out.push_back(fi);
  }
  return out;
}

}  // namespace mysawh::core
