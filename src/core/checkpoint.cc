#include "core/checkpoint.h"

#include <unistd.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "util/failpoint.h"
#include "util/file_io.h"
#include "util/metrics.h"
#include "util/resource_stats.h"
#include "util/serialization.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace mysawh::core {
namespace {

constexpr char kHeader[] = "mysawh-cell v1";

/// Checkpoint round-trip latency (serialization + checksummed I/O both
/// included: the caller-visible cost of persistence).
struct CheckpointMetrics {
  LatencyHistogram* save_us;
  LatencyHistogram* load_us;
};

CheckpointMetrics& Metrics() {
  static CheckpointMetrics metrics = [] {
    auto& registry = MetricsRegistry::Global();
    return CheckpointMetrics{registry.GetHistogram("checkpoint.save_us"),
                             registry.GetHistogram("checkpoint.load_us")};
  }();
  return metrics;
}

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::string EncodeRegression(const RegressionMetrics& m) {
  std::ostringstream os;
  os << EncodeDouble(m.mae) << " " << EncodeDouble(m.rmse) << " "
     << EncodeDouble(m.mape) << " " << EncodeDouble(m.one_minus_mape) << " "
     << m.n << " " << m.mape_skipped;
  return os.str();
}

Result<RegressionMetrics> DecodeRegression(const std::vector<std::string>& f) {
  if (f.size() != 6) {
    return Status::InvalidArgument("regression metrics need 6 fields");
  }
  RegressionMetrics m;
  MYSAWH_ASSIGN_OR_RETURN(m.mae, DecodeDouble(f[0]));
  MYSAWH_ASSIGN_OR_RETURN(m.rmse, DecodeDouble(f[1]));
  MYSAWH_ASSIGN_OR_RETURN(m.mape, DecodeDouble(f[2]));
  MYSAWH_ASSIGN_OR_RETURN(m.one_minus_mape, DecodeDouble(f[3]));
  MYSAWH_ASSIGN_OR_RETURN(m.n, ParseInt64(f[4]));
  MYSAWH_ASSIGN_OR_RETURN(m.mape_skipped, ParseInt64(f[5]));
  return m;
}

std::string EncodeClassification(const ClassificationMetrics& m) {
  std::ostringstream os;
  os << m.tp << " " << m.fp << " " << m.tn << " " << m.fn << " "
     << EncodeDouble(m.accuracy) << " " << EncodeDouble(m.precision_true)
     << " " << EncodeDouble(m.precision_false) << " "
     << EncodeDouble(m.recall_true) << " " << EncodeDouble(m.recall_false)
     << " " << EncodeDouble(m.f1_true) << " " << EncodeDouble(m.f1_false);
  return os.str();
}

Result<ClassificationMetrics> DecodeClassification(
    const std::vector<std::string>& f) {
  if (f.size() != 11) {
    return Status::InvalidArgument("classification metrics need 11 fields");
  }
  ClassificationMetrics m;
  MYSAWH_ASSIGN_OR_RETURN(m.tp, ParseInt64(f[0]));
  MYSAWH_ASSIGN_OR_RETURN(m.fp, ParseInt64(f[1]));
  MYSAWH_ASSIGN_OR_RETURN(m.tn, ParseInt64(f[2]));
  MYSAWH_ASSIGN_OR_RETURN(m.fn, ParseInt64(f[3]));
  MYSAWH_ASSIGN_OR_RETURN(m.accuracy, DecodeDouble(f[4]));
  MYSAWH_ASSIGN_OR_RETURN(m.precision_true, DecodeDouble(f[5]));
  MYSAWH_ASSIGN_OR_RETURN(m.precision_false, DecodeDouble(f[6]));
  MYSAWH_ASSIGN_OR_RETURN(m.recall_true, DecodeDouble(f[7]));
  MYSAWH_ASSIGN_OR_RETURN(m.recall_false, DecodeDouble(f[8]));
  MYSAWH_ASSIGN_OR_RETURN(m.f1_true, DecodeDouble(f[9]));
  MYSAWH_ASSIGN_OR_RETURN(m.f1_false, DecodeDouble(f[10]));
  return m;
}

/// Splits "<tag> <rest>" and verifies the tag; returns the rest.
Result<std::string> TaggedRest(const std::string& line,
                               const std::string& tag) {
  if (!StartsWith(line, tag + " ")) {
    return Status::InvalidArgument("expected '" + tag + "' line, got: " + line);
  }
  return line.substr(tag.size() + 1);
}

}  // namespace

std::string CheckpointFileName(Outcome outcome, Approach approach,
                               bool with_fi) {
  return "cell_" + Lower(OutcomeName(outcome)) + "_" +
         Lower(ApproachName(approach)) + (with_fi ? "_fi1" : "_fi0") + ".ckpt";
}

std::string SerializeExperimentResult(const ExperimentResult& result,
                                      const std::string& fingerprint) {
  const std::string model_text =
      result.model ? result.model->SerializeWithKind() : std::string();
  std::ostringstream os;
  os << kHeader << "\n";
  os << "fingerprint " << fingerprint << "\n";
  os << "cell " << OutcomeName(result.outcome) << " "
     << ApproachName(result.approach) << " " << (result.with_fi ? 1 : 0)
     << "\n";
  os << "classification " << (result.is_classification ? 1 : 0) << "\n";
  os << "test_regression " << EncodeRegression(result.test_regression) << "\n";
  os << "cv_regression " << EncodeRegression(result.cv_regression) << "\n";
  os << "test_classification "
     << EncodeClassification(result.test_classification) << "\n";
  os << "cv_classification " << EncodeClassification(result.cv_classification)
     << "\n";
  os << "model_bytes " << model_text.size() << "\n";
  os << model_text;
  return os.str();
}

Result<ExperimentResult> DeserializeExperimentResult(
    const std::string& text, const std::string& expected_fingerprint) {
  std::istringstream is(text);
  std::string line;
  auto next_line = [&]() -> Result<std::string> {
    if (!std::getline(is, line)) {
      return Status::InvalidArgument("checkpoint truncated");
    }
    return line;
  };
  MYSAWH_ASSIGN_OR_RETURN(std::string header, next_line());
  if (header != kHeader) {
    return Status::InvalidArgument("bad checkpoint header: " + header);
  }
  MYSAWH_ASSIGN_OR_RETURN(std::string fp_line, next_line());
  MYSAWH_ASSIGN_OR_RETURN(std::string fp, TaggedRest(fp_line, "fingerprint"));
  if (fp != expected_fingerprint) {
    return Status::FailedPrecondition(
        "checkpoint fingerprint mismatch: file has '" + fp +
        "', study expects '" + expected_fingerprint + "'");
  }
  ExperimentResult result;
  MYSAWH_ASSIGN_OR_RETURN(std::string cell_line, next_line());
  {
    MYSAWH_ASSIGN_OR_RETURN(std::string rest, TaggedRest(cell_line, "cell"));
    const auto parts = Split(rest, ' ');
    if (parts.size() != 3) {
      return Status::InvalidArgument("bad cell line: " + cell_line);
    }
    MYSAWH_ASSIGN_OR_RETURN(result.outcome, ParseOutcome(parts[0]));
    if (parts[1] == "DD") {
      result.approach = Approach::kDataDriven;
    } else if (parts[1] == "KD") {
      result.approach = Approach::kKnowledgeDriven;
    } else {
      return Status::InvalidArgument("bad approach: " + parts[1]);
    }
    MYSAWH_ASSIGN_OR_RETURN(int64_t fi, ParseInt64(parts[2]));
    result.with_fi = fi != 0;
  }
  MYSAWH_ASSIGN_OR_RETURN(std::string cls_line, next_line());
  {
    MYSAWH_ASSIGN_OR_RETURN(std::string rest,
                            TaggedRest(cls_line, "classification"));
    MYSAWH_ASSIGN_OR_RETURN(int64_t cls, ParseInt64(rest));
    result.is_classification = cls != 0;
  }
  MYSAWH_ASSIGN_OR_RETURN(std::string tr_line, next_line());
  {
    MYSAWH_ASSIGN_OR_RETURN(std::string rest,
                            TaggedRest(tr_line, "test_regression"));
    MYSAWH_ASSIGN_OR_RETURN(result.test_regression,
                            DecodeRegression(Split(rest, ' ')));
  }
  MYSAWH_ASSIGN_OR_RETURN(std::string cr_line, next_line());
  {
    MYSAWH_ASSIGN_OR_RETURN(std::string rest,
                            TaggedRest(cr_line, "cv_regression"));
    MYSAWH_ASSIGN_OR_RETURN(result.cv_regression,
                            DecodeRegression(Split(rest, ' ')));
  }
  MYSAWH_ASSIGN_OR_RETURN(std::string tc_line, next_line());
  {
    MYSAWH_ASSIGN_OR_RETURN(std::string rest,
                            TaggedRest(tc_line, "test_classification"));
    MYSAWH_ASSIGN_OR_RETURN(result.test_classification,
                            DecodeClassification(Split(rest, ' ')));
  }
  MYSAWH_ASSIGN_OR_RETURN(std::string cc_line, next_line());
  {
    MYSAWH_ASSIGN_OR_RETURN(std::string rest,
                            TaggedRest(cc_line, "cv_classification"));
    MYSAWH_ASSIGN_OR_RETURN(result.cv_classification,
                            DecodeClassification(Split(rest, ' ')));
  }
  MYSAWH_ASSIGN_OR_RETURN(std::string mb_line, next_line());
  int64_t model_bytes = 0;
  {
    MYSAWH_ASSIGN_OR_RETURN(std::string rest,
                            TaggedRest(mb_line, "model_bytes"));
    MYSAWH_ASSIGN_OR_RETURN(model_bytes, ParseInt64(rest));
    if (model_bytes < 0) {
      return Status::InvalidArgument("negative model_bytes");
    }
  }
  // The model payload is the raw remainder after the model_bytes line.
  const auto payload_start = static_cast<size_t>(is.tellg());
  if (is.tellg() < 0 || text.size() - payload_start !=
                            static_cast<size_t>(model_bytes)) {
    return Status::InvalidArgument("checkpoint model payload length mismatch");
  }
  if (model_bytes > 0) {
    MYSAWH_ASSIGN_OR_RETURN(result.model,
                            model::Model::Deserialize(text.substr(payload_start)));
  }
  return result;
}

Status SaveCellCheckpoint(const std::string& dir,
                          const std::string& fingerprint,
                          const ExperimentResult& result) {
  // "study/cell_save" armed as `from:K` simulates a process killed after
  // K-1 cells persisted (every later save fails too, like a dead process).
  MYSAWH_FAILPOINT("study/cell_save");
  TraceSpan span("checkpoint.save", "io");
  ScopedLatencyTimer timer(Metrics().save_us);
  const std::string path =
      dir + "/" +
      CheckpointFileName(result.outcome, result.approach, result.with_fi);
  const std::string payload = SerializeExperimentResult(result, fingerprint);
  TrackAlloc(AllocCategory::kCheckpoint,
             static_cast<int64_t>(payload.size()));
  return WriteFileChecksummed(path, payload, "checkpoint_write");
}

Result<ExperimentResult> LoadCellCheckpoint(const std::string& dir,
                                            const std::string& fingerprint,
                                            Outcome outcome, Approach approach,
                                            bool with_fi) {
  const std::string path =
      dir + "/" + CheckpointFileName(outcome, approach, with_fi);
  if (::access(path.c_str(), F_OK) != 0) {
    return Status::NotFound("no checkpoint at " + path);
  }
  TraceSpan span("checkpoint.load", "io");
  ScopedLatencyTimer timer(Metrics().load_us);
  MYSAWH_ASSIGN_OR_RETURN(std::string payload, ReadFileChecksummed(path));
  TrackAlloc(AllocCategory::kCheckpoint,
             static_cast<int64_t>(payload.size()));
  MYSAWH_ASSIGN_OR_RETURN(ExperimentResult result,
                          DeserializeExperimentResult(payload, fingerprint));
  if (result.outcome != outcome || result.approach != approach ||
      result.with_fi != with_fi) {
    return Status::DataLoss("checkpoint " + path +
                            " holds a different cell than its name claims");
  }
  return result;
}

}  // namespace mysawh::core
