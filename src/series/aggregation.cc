#include "series/aggregation.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mysawh {

Result<TimeSeries> AggregateByPeriod(const TimeSeries& daily, int64_t period,
                                     AggregateOp op) {
  if (period <= 0) {
    return Status::InvalidArgument("AggregateByPeriod: period must be > 0");
  }
  const int64_t n = daily.size();
  const int64_t num_buckets = (n + period - 1) / period;
  std::vector<double> out(static_cast<size_t>(num_buckets),
                          std::numeric_limits<double>::quiet_NaN());
  for (int64_t b = 0; b < num_buckets; ++b) {
    const int64_t begin = b * period;
    const int64_t end = std::min(begin + period, n);
    double acc = 0.0;
    int64_t count = 0;
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    for (int64_t i = begin; i < end; ++i) {
      if (daily.IsMissing(i)) continue;
      const double v = daily.at(i);
      acc += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
      ++count;
    }
    if (count == 0) continue;
    switch (op) {
      case AggregateOp::kMean:
        out[static_cast<size_t>(b)] = acc / static_cast<double>(count);
        break;
      case AggregateOp::kSum:
        out[static_cast<size_t>(b)] = acc;
        break;
      case AggregateOp::kMin:
        out[static_cast<size_t>(b)] = mn;
        break;
      case AggregateOp::kMax:
        out[static_cast<size_t>(b)] = mx;
        break;
    }
  }
  return TimeSeries(std::move(out));
}

Result<TimeSeries> DailyToMonthlyMean(const TimeSeries& daily) {
  return AggregateByPeriod(daily, 30, AggregateOp::kMean);
}

}  // namespace mysawh
