#ifndef MYSAWH_SERIES_INTERPOLATION_H_
#define MYSAWH_SERIES_INTERPOLATION_H_

#include <cstdint>

#include "series/time_series.h"
#include "util/status.h"

namespace mysawh {

/// Result of an interpolation pass.
struct InterpolationReport {
  int64_t filled = 0;        ///< Entries that were filled.
  int64_t left_missing = 0;  ///< Entries still missing afterwards.
};

/// How bounded gaps are filled.
enum class ImputationMethod {
  kLinear,   ///< Linear interpolation between the surrounding observations.
  kLocf,     ///< Last observation carried forward (clinical-trial staple);
             ///< leading gaps fall back to backward carry.
  kNearest,  ///< Nearest surrounding observation (ties resolve backward).
};

/// Fills missing runs of length <= `max_gap` by linear interpolation between
/// the surrounding observed values. Runs longer than `max_gap` are left
/// untouched — the paper's quality-assurance step found that interpolating
/// very large gaps produces spurious training data and settled on a max of 5.
///
/// Boundary runs (no observation on one side) are filled by carrying the
/// nearest observation when their length is within `max_gap`, and left
/// missing otherwise. `max_gap == 0` disables filling entirely.
Result<InterpolationReport> InterpolateMaxGap(TimeSeries* series,
                                              int64_t max_gap);

/// Generalization of InterpolateMaxGap to other imputation methods; the
/// same bounded-run semantics apply.
Result<InterpolationReport> ImputeMaxGap(TimeSeries* series, int64_t max_gap,
                                         ImputationMethod method);

/// Fills every remaining missing entry with `value` (used after bounded
/// interpolation when the learner cannot accept NaN; our GBT can, so the
/// main pipeline keeps NaNs instead).
int64_t FillMissing(TimeSeries* series, double value);

}  // namespace mysawh

#endif  // MYSAWH_SERIES_INTERPOLATION_H_
