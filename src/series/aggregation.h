#ifndef MYSAWH_SERIES_AGGREGATION_H_
#define MYSAWH_SERIES_AGGREGATION_H_

#include <cstdint>
#include <vector>

#include "series/time_series.h"
#include "util/status.h"

namespace mysawh {

/// How a block of daily observations is reduced to one monthly value.
enum class AggregateOp { kMean, kSum, kMin, kMax };

/// Reduces daily observations to one value per fixed-size period, skipping
/// missing entries. A period with no observed entries yields NaN. This is
/// the paper's "mean of the daily wearable device data collected during the
/// same month" step (steps, calories, sleep hours).
///
/// `period` is the number of daily entries per bucket (e.g. 30). The final
/// bucket may be shorter. Requires period > 0.
Result<TimeSeries> AggregateByPeriod(const TimeSeries& daily, int64_t period,
                                     AggregateOp op);

/// Convenience wrapper: monthly means with 30-day months.
Result<TimeSeries> DailyToMonthlyMean(const TimeSeries& daily);

}  // namespace mysawh

#endif  // MYSAWH_SERIES_AGGREGATION_H_
