#include "series/time_series.h"

#include <cmath>

namespace mysawh {

TimeSeries::TimeSeries(std::vector<double> values)
    : values_(std::move(values)) {}

bool TimeSeries::IsMissing(int64_t i) const {
  return std::isnan(values_[static_cast<size_t>(i)]);
}

int64_t TimeSeries::NumMissing() const {
  int64_t count = 0;
  for (double v : values_) count += std::isnan(v) ? 1 : 0;
  return count;
}

std::vector<Gap> FindGaps(const TimeSeries& series) {
  std::vector<Gap> gaps;
  int64_t i = 0;
  while (i < series.size()) {
    if (series.IsMissing(i)) {
      Gap gap{i, 0};
      while (i < series.size() && series.IsMissing(i)) {
        ++gap.length;
        ++i;
      }
      gaps.push_back(gap);
    } else {
      ++i;
    }
  }
  return gaps;
}

void GapStats::Merge(const GapStats& other) {
  const int64_t combined = num_gaps + other.num_gaps;
  if (combined > 0) {
    mean_length = (mean_length * static_cast<double>(num_gaps) +
                   other.mean_length * static_cast<double>(other.num_gaps)) /
                  static_cast<double>(combined);
  }
  num_gaps = combined;
  total_missing += other.total_missing;
  max_length = std::max(max_length, other.max_length);
}

GapStats ComputeGapStats(const TimeSeries& series) {
  GapStats stats;
  for (const Gap& gap : FindGaps(series)) {
    ++stats.num_gaps;
    stats.total_missing += gap.length;
    stats.max_length = std::max(stats.max_length, gap.length);
  }
  if (stats.num_gaps > 0) {
    stats.mean_length = static_cast<double>(stats.total_missing) /
                        static_cast<double>(stats.num_gaps);
  }
  return stats;
}

}  // namespace mysawh
