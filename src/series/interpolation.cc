#include "series/interpolation.h"

#include <cmath>

namespace mysawh {

Result<InterpolationReport> InterpolateMaxGap(TimeSeries* series,
                                              int64_t max_gap) {
  return ImputeMaxGap(series, max_gap, ImputationMethod::kLinear);
}

Result<InterpolationReport> ImputeMaxGap(TimeSeries* series, int64_t max_gap,
                                         ImputationMethod method) {
  if (series == nullptr) {
    return Status::InvalidArgument("ImputeMaxGap: null series");
  }
  if (max_gap < 0) {
    return Status::InvalidArgument("ImputeMaxGap: max_gap must be >= 0");
  }
  InterpolationReport report;
  const auto gaps = FindGaps(*series);
  for (const Gap& gap : gaps) {
    if (max_gap == 0 || gap.length > max_gap) continue;
    const int64_t before = gap.start - 1;
    const int64_t after = gap.start + gap.length;
    const bool has_before = before >= 0;
    const bool has_after = after < series->size();
    if (!has_before && !has_after) continue;  // fully missing series
    for (int64_t k = 0; k < gap.length; ++k) {
      const int64_t pos = gap.start + k;
      double value;
      if (!has_before) {
        value = series->at(after);  // backward carry at the boundary
      } else if (!has_after) {
        value = series->at(before);  // forward carry at the boundary
      } else {
        switch (method) {
          case ImputationMethod::kLinear: {
            const double lo = series->at(before);
            const double hi = series->at(after);
            const double t = static_cast<double>(k + 1) /
                             static_cast<double>(gap.length + 1);
            value = lo + t * (hi - lo);
            break;
          }
          case ImputationMethod::kLocf:
            value = series->at(before);
            break;
          case ImputationMethod::kNearest: {
            const int64_t dist_before = pos - before;
            const int64_t dist_after = after - pos;
            value = dist_before <= dist_after ? series->at(before)
                                              : series->at(after);
            break;
          }
          default:
            return Status::InvalidArgument("unknown imputation method");
        }
      }
      series->set(pos, value);
      ++report.filled;
    }
  }
  report.left_missing = series->NumMissing();
  return report;
}

int64_t FillMissing(TimeSeries* series, double value) {
  int64_t filled = 0;
  for (int64_t i = 0; i < series->size(); ++i) {
    if (series->IsMissing(i)) {
      series->set(i, value);
      ++filled;
    }
  }
  return filled;
}

}  // namespace mysawh
