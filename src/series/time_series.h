#ifndef MYSAWH_SERIES_TIME_SERIES_H_
#define MYSAWH_SERIES_TIME_SERIES_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace mysawh {

/// A regularly sampled series (one value per time step, e.g. one PRO answer
/// per month). Missing observations are quiet NaN.
class TimeSeries {
 public:
  TimeSeries() = default;
  /// Wraps `values`; NaN entries are gaps.
  explicit TimeSeries(std::vector<double> values);

  int64_t size() const { return static_cast<int64_t>(values_.size()); }
  double at(int64_t i) const { return values_[static_cast<size_t>(i)]; }
  void set(int64_t i, double v) { values_[static_cast<size_t>(i)] = v; }
  const std::vector<double>& values() const { return values_; }

  /// True when the entry at `i` is missing (NaN).
  bool IsMissing(int64_t i) const;

  /// Number of missing entries.
  int64_t NumMissing() const;

 private:
  std::vector<double> values_;
};

/// One maximal run of consecutive missing observations.
struct Gap {
  int64_t start = 0;   ///< Index of the first missing entry.
  int64_t length = 0;  ///< Number of consecutive missing entries.
};

/// Aggregate gap statistics of a series or collection of series, mirroring
/// the quality-assurance numbers the paper reports (average gap length ~5,
/// max 17; ~108 gaps per patient).
struct GapStats {
  int64_t num_gaps = 0;
  int64_t total_missing = 0;
  int64_t max_length = 0;
  double mean_length = 0.0;

  /// Merges another set of gap statistics into this one.
  void Merge(const GapStats& other);
};

/// Finds every maximal missing run in `series`.
std::vector<Gap> FindGaps(const TimeSeries& series);

/// Computes gap statistics of a single series.
GapStats ComputeGapStats(const TimeSeries& series);

}  // namespace mysawh

#endif  // MYSAWH_SERIES_TIME_SERIES_H_
